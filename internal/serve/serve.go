// Package serve turns the simulator into a long-running service: an
// HTTP/JSON API (stdlib net/http only) that executes canonical job specs
// (internal/spec) as managed jobs behind a bounded queue and a worker
// pool, with a content-addressed result cache, singleflight deduplication
// of identical in-flight requests, per-job cancellation, graceful drain,
// and a Prometheus-format metrics surface.
//
// The caching contract: the simulator is byte-deterministic in the
// normalized spec (the repository's -jobs determinism tests pin this),
// so the spec's sha256 content address fully identifies a result. A
// cache hit therefore returns bytes identical to a fresh computation —
// pinned by this package's tests and by the ci.sh end-to-end smoke.
//
// API:
//
//	POST   /v1/jobs             submit a spec; 202 queued, 200 cache/dedup
//	                            hit, 400 bad spec, 429 queue full, 503 draining
//	POST   /v1/traces           chunked trace upload (text or binary
//	                            ingest format): streamed to the trace blob
//	                            store with bounded request memory, hash
//	                            computed while streaming; 200 {hash,...},
//	                            400 malformed trace
//	GET    /v1/jobs/{id}        job status + progress
//	GET    /v1/jobs/{id}/result rendered result (text; ?format=json for
//	                            structured; ?wait=1 blocks until terminal)
//	GET    /v1/results/{hash}   content-addressed result read: serves the
//	                            bytes for a spec hash from the hot LRU or
//	                            the disk store, 404 when absent — the
//	                            endpoint cluster peers read through
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /healthz             liveness + queue/worker occupancy
//	GET    /metrics             Prometheus text exposition
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve/store"
	"repro/internal/spec"
)

// Config tunes a Server. Zero values select the documented defaults.
type Config struct {
	// Workers is the job worker-pool width (default 2). Each worker runs
	// one job at a time; exp-kind jobs additionally fan their grid across
	// ExpJobs goroutines.
	Workers int
	// QueueDepth bounds the pending-job backlog (default 16). A full
	// queue rejects submissions with 429 — backpressure, not buffering.
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache (default
	// 64 entries; results are rendered tables, a few KB each).
	CacheEntries int
	// Store, when non-nil, is the disk spill tier behind the in-memory
	// LRU: every completed result is persisted there, LRU misses read
	// through it, and it survives restarts. The determinism contract
	// (spec hash addresses exact bytes) is what makes a disk hit
	// indistinguishable from a fresh computation.
	Store *store.Store
	// Traces, when non-nil, enables trace-kind jobs: POST /v1/traces
	// streams uploads into it, and trace-kind submissions resolve their
	// content hash against it. nil rejects both (the default for a
	// stateless server — trace jobs need durable input bytes).
	Traces *store.Blobs
	// ExpJobs is the per-experiment grid pool width handed to
	// internal/exp (0 = GOMAXPROCS). Output is byte-identical for every
	// value, so this is pure execution policy.
	ExpJobs int
	// Shards selects the sharded event kernel for every simulation the
	// server runs (0/1 = single queue). Like ExpJobs, output — and
	// therefore the content-addressed cache — is byte-identical for
	// every value.
	Shards int
	// Parallel runs lane-confined kernel phases concurrently on every
	// sharded simulation (requires Shards > 1). Same byte-identity
	// contract as Shards: pure execution policy, never in the spec.
	Parallel bool
	// JobTimeout, when non-zero, bounds each job's wall-clock run time;
	// an expired job is reported as canceled.
	JobTimeout time.Duration
	// Runner, when non-nil, replaces the built-in spec runner. It must
	// honor the determinism contract (identical bytes for identical
	// normalized specs) — the cache, the disk store and the cluster
	// layer all assume it. Test seam and extension point.
	Runner func(ctx context.Context, sp spec.Spec, progress func(done, total int), coll *metrics.Collector) (*Result, error)
	// SideDir, when non-empty, receives per-job side files: the
	// canonical spec (<id>.spec.txt), a JSONL event trace for sim jobs
	// (<id>.trace.jsonl), and the final status (<id>.status.json).
	SideDir string
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// maxJobHistory bounds the jobs map: beyond it, the oldest *terminal*
// jobs are forgotten (404 afterwards). Cached results survive in the
// result cache independently of job records.
const maxJobHistory = 1024

// NewServer builds a Server and starts its worker pool. The caller owns
// the HTTP listener; Server implements http.Handler. Stop with Drain
// (graceful) or Close (cancel everything).
func NewServer(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 64
	}
	s := newServerCore(cfg)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ServeHTTP dispatches to the API mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.count("http.requests")
	s.mux.ServeHTTP(w, r)
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/traces", s.handleTraceUpload)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/results/{hash}", s.handleResultByHash)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// handleSubmit accepts a spec, resolves it against the cache and the
// in-flight set, and otherwise enqueues a new job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var raw spec.Spec
	if err := dec.Decode(&raw); err != nil {
		http.Error(w, "bad spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	n, err := raw.Normalized()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	hash, err := n.Hash()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// First pass: hot LRU hit or in-flight dedup, under the lock. A hot
	// miss is counted exactly once, here — the disk probe and enqueue
	// below don't re-count.
	if st, code, ok := s.resolveSubmit(n, hash, true); ok {
		writeJSON(w, code, st)
		return
	}

	// Disk read-through, outside the lock (file I/O must not block
	// submissions). A valid entry becomes a synthetic done job and is
	// promoted into the LRU; a corrupt entry was already evicted by the
	// store and falls through to a fresh computation.
	if s.cfg.Store != nil {
		if text, js, err := s.cfg.Store.Get(hash); err == nil {
			s.count("store.hits")
			s.mu.Lock()
			res, ok := s.cache.get(hash) // lost a race with a concurrent insert?
			if !ok {
				res = &Result{Text: text, JSON: js}
				if ev := s.cache.put(hash, res); ev > 0 {
					s.evictionsLocked(ev)
				}
			}
			st := s.cachedJobLocked(n, hash, res)
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, st)
			return
		}
	}

	// Second pass: re-check under the lock (another request may have
	// resolved the hash while we touched the disk), then enqueue.
	if st, code, ok := s.resolveSubmit(n, hash, false); ok {
		writeJSON(w, code, st)
		return
	}

	// A trace job that reaches execution needs its input bytes; with no
	// cached result to serve, an unknown trace hash can only fail later,
	// so reject it now with a pointer at the upload endpoint.
	if n.Kind == spec.KindTrace {
		if s.cfg.Traces == nil {
			http.Error(w, "trace jobs not enabled (server has no trace store)", http.StatusBadRequest)
			return
		}
		if !s.cfg.Traces.Has(n.Trace) {
			http.Error(w, fmt.Sprintf("unknown trace %s: upload it via POST /v1/traces first", n.Trace),
				http.StatusBadRequest)
			return
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		http.Error(w, "server is draining", http.StatusServiceUnavailable)
		return
	}
	j := s.newJobLocked(n, hash)
	select {
	case s.queue <- j:
		s.inflight[hash] = j
		st := j.statusLocked()
		s.mu.Unlock()
		s.count("jobs.submitted")
		s.writeSpecSideFile(j)
		writeJSON(w, http.StatusAccepted, st)
	default:
		delete(s.jobs, j.ID)
		s.mu.Unlock()
		s.count("queue.rejects")
		http.Error(w, fmt.Sprintf("queue full (%d pending)", cap(s.queue)), http.StatusTooManyRequests)
	}
}

// resolveSubmit serves a submission from the hot cache or the in-flight
// set. countMiss makes the first pass charge the hot-tier miss counter.
func (s *Server) resolveSubmit(n spec.Spec, hash string, countMiss bool) (JobStatus, int, bool) {
	s.mu.Lock()
	if res, ok := s.cache.get(hash); ok {
		st := s.cachedJobLocked(n, hash, res)
		s.mu.Unlock()
		s.count("cache.hits")
		return st, http.StatusOK, true
	}
	if ex, ok := s.inflight[hash]; ok {
		st := ex.statusLocked()
		st.Deduped = true
		s.mu.Unlock()
		if countMiss {
			s.count("cache.misses")
		}
		s.count("jobs.deduped")
		return st, http.StatusOK, true
	}
	s.mu.Unlock()
	if countMiss {
		s.count("cache.misses")
	}
	return JobStatus{}, 0, false
}

// cachedJobLocked registers a synthetic already-done job serving res.
// Caller holds mu.
func (s *Server) cachedJobLocked(n spec.Spec, hash string, res *Result) JobStatus {
	j := s.newJobLocked(n, hash)
	j.State, j.Cached, j.res = JobDone, true, res
	j.Done, j.Total = 1, 1
	j.finished = j.submitted
	close(j.done)
	return j.statusLocked()
}

func (s *Server) lookup(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	s.mu.Lock()
	st := j.statusLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleResult serves a finished job's body. ?wait=1 blocks until the
// job reaches a terminal state (bounded by the request's own context),
// which lets a client submitted before a drain retrieve its result
// through the drain window without polling races.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-j.done:
		case <-r.Context().Done():
			http.Error(w, "wait aborted", http.StatusRequestTimeout)
			return
		}
	}
	s.mu.Lock()
	state, res, errStr, st := j.State, j.res, j.Err, j.statusLocked()
	s.mu.Unlock()
	switch state {
	case JobQueued, JobRunning:
		writeJSON(w, http.StatusAccepted, st)
	case JobCanceled:
		http.Error(w, "job canceled: "+errStr, http.StatusGone)
	case JobFailed:
		http.Error(w, "job failed: "+errStr, http.StatusInternalServerError)
	case JobDone:
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(res.JSON)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write(res.Text)
	}
}

// LookupResult fetches the result bytes for a spec hash from the hot
// LRU or, failing that, the disk store (promoting a disk hit into the
// LRU). It is the local read path behind /v1/results/{hash} and the
// hook cluster routers use for peer read-through.
func (s *Server) LookupResult(hash string) (*Result, bool) {
	s.mu.Lock()
	res, ok := s.cache.get(hash)
	s.mu.Unlock()
	if ok {
		return res, true
	}
	if s.cfg.Store == nil {
		return nil, false
	}
	text, js, err := s.cfg.Store.Get(hash)
	if err != nil {
		return nil, false
	}
	s.count("store.hits")
	res = &Result{Text: text, JSON: js}
	s.mu.Lock()
	if hot, ok := s.cache.get(hash); ok {
		res = hot // a concurrent insert won; serve the canonical copy
	} else if ev := s.cache.put(hash, res); ev > 0 {
		s.evictionsLocked(ev)
	}
	s.mu.Unlock()
	return res, true
}

// AdmitResult inserts a result fetched from elsewhere (a cluster peer)
// into the hot LRU and the disk store. The determinism contract makes
// this safe: the hash fully addresses the bytes, so an admitted result
// is identical to what a local computation would have produced.
func (s *Server) AdmitResult(hash string, res *Result) {
	s.mu.Lock()
	if _, ok := s.cache.get(hash); !ok {
		if ev := s.cache.put(hash, res); ev > 0 {
			s.evictionsLocked(ev)
		}
	}
	s.mu.Unlock()
	s.count("results.admitted")
	if s.cfg.Store != nil {
		if err := s.cfg.Store.Put(hash, res.Text, res.JSON); err != nil {
			s.logf("dlserve: store admit %s: %v", hash[:12], err)
		}
	}
}

// handleResultByHash serves a result by its content address. Unlike the
// job endpoints this is location-independent: any node holding the bytes
// (hot or spilled) can answer, which is what makes cluster peer
// read-through possible.
func (s *Server) handleResultByHash(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	res, ok := s.LookupResult(hash)
	if !ok {
		s.count("results.misses")
		http.Error(w, "no result for hash", http.StatusNotFound)
		return
	}
	s.count("results.hits")
	w.Header().Set("X-DL-Spec-Hash", hash)
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(res.JSON)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write(res.Text)
}

// handleCancel cancels a job: queued jobs terminate immediately, running
// jobs get their context canceled (exp grids abort between simulations;
// a single simulation runs to completion — the engine is not
// interruptible mid-kernel).
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	canceledNow := false
	s.mu.Lock()
	if j.State == JobQueued {
		j.State = JobCanceled
		j.Err = "canceled before start"
		j.finished = time.Now()
		delete(s.inflight, j.Hash)
		close(j.done)
		canceledNow = true
	}
	j.cancel()
	st := j.statusLocked()
	s.mu.Unlock()
	if canceledNow {
		s.count("jobs.canceled")
	}
	writeJSON(w, http.StatusOK, st)
}

// Health is the /healthz body.
type Health struct {
	Status       string  `json:"status"` // "ok" or "draining"
	Queued       int     `json:"queued"`
	Running      int     `json:"running"`
	Jobs         int     `json:"jobs"`
	CacheEntries int     `json:"cache_entries"`
	StoreEntries int     `json:"store_entries,omitempty"`
	TraceEntries int     `json:"trace_entries,omitempty"`
	Workers      int     `json:"workers"`
	QueueDepth   int     `json:"queue_depth"`
	UptimeSec    float64 `json:"uptime_sec"`
}

func (s *Server) health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{
		Status: "ok", Queued: len(s.queue), Running: s.running,
		Jobs: len(s.jobs), CacheEntries: s.cache.len(),
		Workers: s.cfg.Workers, QueueDepth: cap(s.queue),
		UptimeSec: time.Since(s.start).Seconds(),
	}
	if s.draining {
		h.Status = "draining"
	}
	if s.cfg.Store != nil {
		h.StoreEntries = s.cfg.Store.Len()
	}
	if s.cfg.Traces != nil {
		h.TraceEntries = s.cfg.Traces.Len()
	}
	return h
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

// Drain stops intake (submissions get 503; status, result and metrics
// reads keep working) and waits for every queued and running job to
// finish. If ctx expires first, in-flight jobs are canceled and Drain
// waits for the workers to acknowledge before returning ctx's error.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Close cancels all jobs and stops the workers. For tests and abrupt
// shutdown; prefer Drain.
func (s *Server) Close() {
	s.baseCancel()
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
}
