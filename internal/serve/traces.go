// traces.go is the trace-upload surface: POST /v1/traces streams a
// trace (either ingest encoding) into the blob store while parsing and
// hashing it record-at-a-time — memory per request is one bufio buffer,
// never the whole trace. Trace-kind jobs then reference the stored blob
// by its canonical hash.
package serve

import (
	"errors"
	"io"
	"net/http"

	"repro/internal/ingest"
	"repro/internal/trace"
)

// TraceInfo is the POST /v1/traces response body.
type TraceInfo struct {
	Hash    string `json:"hash"`
	Bytes   int64  `json:"bytes"`
	Records uint64 `json:"records"`
	Threads int    `json:"threads"`
}

// handleTraceUpload validates and stores an uploaded trace. The body is
// teed to a blob temp file while the ingest reader parses it; a parse
// error aborts the blob (nothing is kept) and reports the offending
// line/record, and a valid trace is committed under its canonical hash
// — idempotently, so re-uploading (or uploading the other encoding of a
// trace already stored) succeeds with the same hash.
func (s *Server) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Traces == nil {
		http.Error(w, "trace uploads not enabled (server has no trace store)", http.StatusNotImplemented)
		return
	}
	bw, err := s.cfg.Traces.Create()
	if err != nil {
		s.count("traces.errors")
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	rd, err := ingest.NewReader(io.TeeReader(r.Body, bw))
	if err != nil {
		bw.Abort()
		s.count("traces.errors")
		http.Error(w, "bad trace: "+err.Error(), http.StatusBadRequest)
		return
	}
	var rec trace.Record
	for {
		if err := rd.Next(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			bw.Abort()
			s.count("traces.errors")
			http.Error(w, "bad trace: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	if rd.Records() == 0 {
		bw.Abort()
		s.count("traces.errors")
		http.Error(w, "bad trace: no records", http.StatusBadRequest)
		return
	}
	hash := rd.Sum()
	info := TraceInfo{Hash: hash, Bytes: bw.Bytes(), Records: rd.Records(), Threads: rd.Threads()}
	if err := bw.Commit(hash); err != nil {
		s.count("traces.errors")
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.count("traces.uploaded")
	s.logf("dlserve: trace %s uploaded (%d records, %d bytes)", hash[:12], info.Records, info.Bytes)
	writeJSON(w, http.StatusOK, info)
}
