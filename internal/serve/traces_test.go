package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/ingest"
	"repro/internal/serve/store"
	"repro/internal/spec"
	"repro/internal/trace"
)

// testTrace builds a small but non-trivial trace in the requested
// encoding. Raw addresses are deliberately wide — the default page
// mapping must fold them onto the simulated DIMMs.
func testTrace(t *testing.T, format ingest.Format) []byte {
	t.Helper()
	tr := &trace.Trace{Threads: 4}
	rng := uint64(0x1234_5678_9abc_def0)
	for i := 0; i < 200; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		tr.Records = append(tr.Records, trace.Record{
			Seq: uint64(i), Thread: i % 4,
			Addr: rng % (1 << 40), Size: uint32(64 + (rng>>33)%192),
			Write: rng&1 == 1, Gap: (rng >> 40) & 255,
		})
	}
	var buf bytes.Buffer
	if err := ingest.WriteTrace(&buf, tr, format); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func tracesServer(t *testing.T) (*Server, *httptest.Server, *store.Blobs) {
	t.Helper()
	blobs, err := store.OpenBlobs(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Config{Workers: 1, Traces: blobs})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts, blobs
}

func uploadTrace(t *testing.T, ts *httptest.Server, body []byte) (*http.Response, TraceInfo) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info TraceInfo
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
	}
	return resp, info
}

// TestTraceUploadAndRun is the HTTP half of the external-trace contract:
// upload → trace-kind job → result bytes identical to a direct
// ReplayTrace of the same bytes, and both encodings of the trace land on
// one blob and one cached result.
func TestTraceUploadAndRun(t *testing.T) {
	_, ts, blobs := tracesServer(t)
	text := testTrace(t, ingest.FormatText)
	bin := testTrace(t, ingest.FormatBinary)

	resp, info := uploadTrace(t, ts, text)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: HTTP %d", resp.StatusCode)
	}
	if info.Records != 200 || info.Threads != 4 || len(info.Hash) != 64 {
		t.Fatalf("upload info: %+v", info)
	}
	if !blobs.Has(info.Hash) {
		t.Fatal("uploaded blob not in store")
	}

	// The binary serialization of the same logical trace is the same
	// content address — the second upload is an idempotent no-op.
	resp2, info2 := uploadTrace(t, ts, bin)
	if resp2.StatusCode != http.StatusOK || info2.Hash != info.Hash {
		t.Fatalf("binary upload: HTTP %d hash %s (want %s)", resp2.StatusCode, info2.Hash, info.Hash)
	}
	if blobs.Len() != 1 {
		t.Fatalf("store holds %d blobs, want 1", blobs.Len())
	}

	sp := spec.Spec{Kind: spec.KindTrace, Trace: info.Hash, DIMMs: 4, Channels: 2}
	resp3, st := postSpec(t, ts, sp)
	if resp3.StatusCode != http.StatusAccepted {
		t.Fatalf("trace submit: HTTP %d", resp3.StatusCode)
	}
	fin := waitDone(t, ts, st.ID)
	if fin.State != JobDone {
		t.Fatalf("trace job ended %s: %s", fin.State, fin.Error)
	}
	rresp, body := getResult(t, ts, st.ID, "")
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %d", rresp.StatusCode)
	}

	// Ground truth: replay the same bytes directly.
	td, err := ingest.ReadAll(bytes.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	run, err := sp.ReplayTrace(td, spec.SimHooks{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	run.Report(&want)
	if !bytes.Equal(body, want.Bytes()) {
		t.Errorf("HTTP trace result differs from direct replay:\n--- http\n%s--- direct\n%s", body, want.Bytes())
	}

	// Resubmit: served from cache.
	_, st2 := postSpec(t, ts, sp)
	if !st2.Cached {
		t.Errorf("resubmitted trace job not cached: %+v", st2)
	}
}

// TestTraceUploadMalformed: a corrupt body is rejected with the parse
// position and leaves nothing in the store.
func TestTraceUploadMalformed(t *testing.T) {
	_, ts, blobs := tracesServer(t)
	cases := map[string][]byte{
		"bad magic":      []byte("not a trace\n"),
		"bad record":     []byte("#dltrace v1\n#threads 2\n0 R zz 64 0\n"),
		"truncated":      testTrace(t, ingest.FormatBinary)[:20],
		"empty":          {},
		"header no recs": []byte("#dltrace v1\n#threads 2\n"),
	}
	for name, body := range cases {
		resp, _ := uploadTrace(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, resp.StatusCode)
		}
	}
	if blobs.Len() != 0 {
		t.Errorf("rejected uploads left %d blobs", blobs.Len())
	}
}

// TestTraceSubmitGates: trace-kind submissions are rejected up front
// when the referenced blob is missing, and when the server has no trace
// store at all.
func TestTraceSubmitGates(t *testing.T) {
	_, ts, _ := tracesServer(t)
	unknown := spec.Spec{Kind: spec.KindTrace,
		Trace: "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"}
	resp, _ := postSpec(t, ts, unknown)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown trace: HTTP %d, want 400", resp.StatusCode)
	}

	bare := NewServer(Config{Workers: 1})
	defer bare.Close()
	bts := httptest.NewServer(bare)
	defer bts.Close()
	resp2, _ := postSpec(t, bts, unknown)
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("no trace store: HTTP %d, want 400", resp2.StatusCode)
	}
	uresp, err := http.Post(bts.URL+"/v1/traces", "application/octet-stream",
		bytes.NewReader(testTrace(t, ingest.FormatText)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, uresp.Body)
	uresp.Body.Close()
	if uresp.StatusCode != http.StatusNotImplemented {
		t.Errorf("upload without store: HTTP %d, want 501", uresp.StatusCode)
	}
}
