// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (quick-mode inputs; see EXPERIMENTS.md for recorded
// results and cmd/dlbench for the CLI equivalent, including -full for
// paper-scale inputs).
//
//	go test -bench=. -benchmem .
//
// One benchmark iteration runs the complete experiment, so time/op is the
// wall-clock cost of regenerating that artifact.
package repro

import (
	"runtime"
	"testing"

	"repro/internal/exp"
	"repro/internal/nmp"
	"repro/internal/workloads"
)

func runExperiment(b *testing.B, id string) {
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	opts := exp.DefaultOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables := e.Run(opts)
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

// The serial/parallel pair times one full quick-mode regeneration of every
// registered experiment — the dlbench `-exp all` path — with the job engine
// pinned to one worker versus fanned across every core:
//
//	go test -bench='AllExperiments' -benchtime=1x .
//
// The ratio of the two times is the end-to-end speedup of `-jobs N` on this
// machine; the rendered output is byte-identical either way (see
// TestParallelSerialEquivalence and internal/exp's determinism test).
func benchmarkAllExperiments(b *testing.B, jobs int) {
	opts := exp.DefaultOptions()
	opts.Jobs = jobs
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, e := range exp.All() {
			if len(e.Run(opts)) == 0 {
				b.Fatalf("%s produced no tables", e.ID)
			}
		}
	}
}

func BenchmarkAllExperimentsSerial(b *testing.B) { benchmarkAllExperiments(b, 1) }

func BenchmarkAllExperimentsParallel(b *testing.B) {
	benchmarkAllExperiments(b, runtime.GOMAXPROCS(0))
}

// Figures.

func BenchmarkFig01_IDCBandwidth(b *testing.B) { runExperiment(b, "fig01") }
func BenchmarkFig10_P2P(b *testing.B)          { runExperiment(b, "fig10") }
func BenchmarkFig11_Breakdown(b *testing.B)    { runExperiment(b, "fig11") }
func BenchmarkFig12_Broadcast(b *testing.B)    { runExperiment(b, "fig12") }
func BenchmarkFig13_Energy(b *testing.B)       { runExperiment(b, "fig13") }
func BenchmarkFig14_Sync(b *testing.B)         { runExperiment(b, "fig14") }
func BenchmarkFig15_Polling(b *testing.B)      { runExperiment(b, "fig15") }
func BenchmarkFig16_Bandwidth(b *testing.B)    { runExperiment(b, "fig16") }
func BenchmarkFig17_Topology(b *testing.B)     { runExperiment(b, "fig17") }

// Tables.

func BenchmarkTable01_MaxBandwidth(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable02_SerDes(b *testing.B)       { runExperiment(b, "table2") }
func BenchmarkTable04_Benchmarks(b *testing.B)   { runExperiment(b, "table4") }
func BenchmarkTable05_Config(b *testing.B)       { runExperiment(b, "table5") }

// Ablations beyond the paper.

func BenchmarkAblMapping(b *testing.B) { runExperiment(b, "abl-mapping") }
func BenchmarkAblDLL(b *testing.B)     { runExperiment(b, "abl-dll") }
func BenchmarkAblCredits(b *testing.B) { runExperiment(b, "abl-credits") }
func BenchmarkAblPayload(b *testing.B) { runExperiment(b, "abl-payload") }
func BenchmarkAblGreedy(b *testing.B)  { runExperiment(b, "abl-greedy") }
func BenchmarkAblPage(b *testing.B)    { runExperiment(b, "abl-page") }

// Direct micro-benchmarks with physical metrics, complementing the
// experiment reruns above.

// BenchmarkP2PAdjacentDIMMLink reports the achievable bandwidth between
// adjacent DIMMs over one GRS link (Table I / Figure 1 context).
func BenchmarkP2PAdjacentDIMMLink(b *testing.B) {
	var mbps uint64
	for i := 0; i < b.N; i++ {
		sys := nmp.MustNewSystem(nmp.DefaultConfig(4, 2, nmp.MechDIMMLink))
		w := &workloads.P2PBench{SrcDIMM: 0, DstDIMM: 1, TransferBytes: 4096, TotalBytes: 1 << 21}
		_, mbps, _ = w.Run(sys, sys.DefaultPlacement(), false)
	}
	b.ReportMetric(float64(mbps)/1000, "GB/s")
}

// BenchmarkP2PCPUForwarding is the same transfer through the host
// (the paper's Figure 1 measures ~3.14 GB/s on real hardware).
func BenchmarkP2PCPUForwarding(b *testing.B) {
	var mbps uint64
	for i := 0; i < b.N; i++ {
		sys := nmp.MustNewSystem(nmp.DefaultConfig(4, 2, nmp.MechMCN))
		w := &workloads.P2PBench{SrcDIMM: 0, DstDIMM: 1, TransferBytes: 4096, TotalBytes: 1 << 21}
		_, mbps, _ = w.Run(sys, sys.DefaultPlacement(), false)
	}
	b.ReportMetric(float64(mbps)/1000, "GB/s")
}

// BenchmarkBFSOnDIMMLink measures the simulator's own throughput on a
// mid-size BFS (simulated work per wall second).
func BenchmarkBFSOnDIMMLink(b *testing.B) {
	bfs := workloads.NewBFSFromGraph(workloads.Community(14, 8, 42))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := nmp.MustNewSystem(nmp.DefaultConfig(8, 4, nmp.MechDIMMLink))
		res, _, _ := bfs.Run(sys, sys.DefaultPlacement(), false)
		b.ReportMetric(float64(res.Makespan)/1e6, "sim-us")
	}
}

// Extensions (Section VI proposals and PrIM-style kernels).

func BenchmarkExtDisagg(b *testing.B)   { runExperiment(b, "ext-disagg") }
func BenchmarkExtNearBank(b *testing.B) { runExperiment(b, "ext-nearbank") }
func BenchmarkExtPrIM(b *testing.B)     { runExperiment(b, "ext-prim") }
