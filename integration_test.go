package repro

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/nmp"
	"repro/internal/workloads"
)

// TestEndToEndDeterminism runs the same workload on the same system twice
// and requires bit-identical makespans, counters and functional results —
// the property every experiment in this repository depends on.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		sys := nmp.MustNewSystem(nmp.DefaultConfig(8, 4, nmp.MechDIMMLink))
		bfs := workloads.NewBFSFromGraph(workloads.Community(12, 8, 42))
		res, chk, _ := bfs.Run(sys, sys.DefaultPlacement(), false)
		return uint64(res.Makespan), chk, sys.IC.Counters().Get("link.bytes")
	}
	m1, c1, l1 := run()
	m2, c2, l2 := run()
	if m1 != m2 || c1 != c2 || l1 != l2 {
		t.Fatalf("non-deterministic run: makespan %d/%d checksum %x/%x link %d/%d",
			m1, m2, c1, c2, l1, l2)
	}
}

// TestParallelSerialEquivalence renders a slice of the experiment registry
// with the job engine pinned serial and fanned across four workers, and
// requires byte-identical output — the user-facing guarantee that
// `dlbench -jobs N` never changes a table, only how fast it appears.
// (internal/exp's determinism test covers a broader slice; this one checks
// the same contract through the public registry the CLI uses.)
func TestParallelSerialEquivalence(t *testing.T) {
	ids := []string{"table1", "abl-payload"}
	if !testing.Short() {
		ids = append(ids, "abl-credits")
	}
	render := func(jobs int) []byte {
		var buf bytes.Buffer
		for _, id := range ids {
			e, ok := exp.ByID(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			opts := exp.DefaultOptions()
			opts.Jobs = jobs
			for _, tb := range e.Run(opts) {
				tb.Render(&buf)
			}
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("-jobs 1 and -jobs 4 rendered different tables:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestFunctionalEqualityAcrossAllSystems runs every deterministic-output
// workload on every mechanism and requires identical functional results:
// the interconnect must never change what is computed, only when.
func TestFunctionalEqualityAcrossAllSystems(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-product sweep skipped in -short mode")
	}
	graph := workloads.Community(11, 8, 5)
	builders := map[string]func() workloads.Workload{
		"bfs":   func() workloads.Workload { return workloads.NewBFSFromGraph(graph) },
		"sssp":  func() workloads.Workload { return workloads.NewSSSPFromGraph(graph) },
		"nw":    func() workloads.Workload { return workloads.NewNW(96, 16, 3) },
		"histo": func() workloads.Workload { return workloads.NewHistogram(1<<12, 32, 3) },
		"tspow": func() workloads.Workload { return workloads.NewTSPow(1<<12, 16, 128, 3) },
	}
	mechs := []nmp.Mechanism{
		nmp.MechDIMMLink, nmp.MechMCN, nmp.MechAIM, nmp.MechABCDIMM,
	}
	for name, mk := range builders {
		var want uint64
		for i, mech := range mechs {
			sys := nmp.MustNewSystem(nmp.DefaultConfig(4, 2, mech))
			_, chk, _ := mk().Run(sys, sys.DefaultPlacement(), false)
			if i == 0 {
				want = chk
			} else if chk != want {
				t.Errorf("%s: %s computed a different result", name, mech)
			}
		}
	}
}

// TestAllWorkloadsRunOnAllTopologies is a smoke matrix: every Table IV
// workload completes on every DL topology without deadlock and produces a
// nonzero makespan.
func TestAllWorkloadsRunOnAllTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix skipped in -short mode")
	}
	graph := workloads.Community(10, 8, 9)
	suite := []workloads.Workload{
		workloads.NewBFSFromGraph(graph),
		workloads.NewHotspot(32, 32, 2),
		workloads.NewKMeans(512, 4, 4, 2, 9),
		workloads.NewNW(64, 16, 9),
		workloads.NewPageRankFromGraph(graph, 2),
		workloads.NewSSSPFromGraph(graph),
	}
	for _, topo := range []core.TopologyKind{core.TopoChain, core.TopoRing, core.TopoMesh, core.TopoTorus} {
		for _, w := range suite {
			cfg := nmp.DefaultConfig(8, 4, nmp.MechDIMMLink)
			cfg.DL.Topology = topo
			sys := nmp.MustNewSystem(cfg)
			res, _, _ := w.Run(sys, sys.DefaultPlacement(), false)
			if res.Makespan == 0 {
				t.Errorf("%s on %s: zero makespan", w.Name(), topo)
			}
		}
	}
}
