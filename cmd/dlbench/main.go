// dlbench regenerates the paper's tables and figures (see DESIGN.md §4 for
// the experiment index and EXPERIMENTS.md for recorded results).
//
// Examples:
//
//	dlbench -list
//	dlbench -exp fig10
//	dlbench -exp all -full          # paper-scale inputs (slow)
//	dlbench -exp fig12 -csv out/    # also dump CSVs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		id   = flag.String("exp", "", "experiment id (fig01, fig10..fig17, table1..table5, abl-*) or 'all'")
		list = flag.Bool("list", false, "list available experiments")
		full = flag.Bool("full", false, "paper-scale inputs (slower); default is quick mode")
		seed = flag.Int64("seed", 42, "input generator seed")
		csv  = flag.String("csv", "", "directory to also write tables as CSV")
	)
	flag.Parse()

	if *list || *id == "" {
		fmt.Println("available experiments:")
		for _, e := range exp.All() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
		}
		if *id == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opts := exp.Options{Quick: !*full, Seed: *seed}
	var targets []exp.Experiment
	if *id == "all" {
		targets = exp.All()
	} else {
		for _, one := range strings.Split(*id, ",") {
			e, ok := exp.ByID(strings.TrimSpace(one))
			if !ok {
				fmt.Fprintf(os.Stderr, "dlbench: unknown experiment %q (use -list)\n", one)
				os.Exit(1)
			}
			targets = append(targets, e)
		}
	}

	for _, e := range targets {
		start := time.Now()
		fmt.Printf("### %s — %s\n\n", e.ID, e.Title)
		tables := e.Run(opts)
		for i, tb := range tables {
			tb.Render(os.Stdout)
			fmt.Println()
			if *csv != "" {
				if err := os.MkdirAll(*csv, 0o755); err != nil {
					fmt.Fprintln(os.Stderr, "dlbench:", err)
					os.Exit(1)
				}
				path := filepath.Join(*csv, fmt.Sprintf("%s_%d.csv", e.ID, i))
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintln(os.Stderr, "dlbench:", err)
					os.Exit(1)
				}
				tb.CSV(f)
				f.Close()
			}
		}
		fmt.Printf("(%s completed in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
