// dlbench regenerates the paper's tables and figures (see DESIGN.md §4 for
// the experiment index and EXPERIMENTS.md for recorded results).
//
// Examples:
//
//	dlbench -list
//	dlbench -exp fig10
//	dlbench -exp all -full          # paper-scale inputs (slow)
//	dlbench -exp all -jobs 8        # fan simulations across 8 workers
//	dlbench -exp fig12 -csv out/    # also dump CSVs
//
// Experiments fan their independent simulation jobs across -jobs worker
// goroutines (default: GOMAXPROCS). Results are reassembled in a fixed
// serial order, so the rendered tables are byte-identical for any -jobs
// value given the same -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/exp"
	"repro/internal/spec"
)

func main() {
	var (
		id       = flag.String("exp", "", "experiment id (fig01, fig10..fig17, table1..table5, abl-*) or 'all'")
		list     = flag.Bool("list", false, "list available experiments")
		full     = flag.Bool("full", false, "paper-scale inputs (slower); default is quick mode")
		seed     = flag.Int64("seed", spec.DefaultSeed, "input generator seed")
		jobs     = flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel simulation jobs per experiment")
		quiet    = flag.Bool("q", false, "suppress per-job progress on stderr")
		shards   = flag.Int("shards", 0, "build every system on the sharded event kernel with N lanes (0/1 = single queue; tables are byte-identical for every value)")
		parallel = flag.Bool("parallel", false, "run lane-confined kernel phases concurrently on every sharded system (requires -shards > 1; tables are byte-identical)")
		csv      = flag.String("csv", "", "directory to also write tables as CSV")

		faultSpec = flag.String("fault", "", "link-fault plan applied to every DIMM-Link run, e.g. 'ber=1e-7,down=0-1@10us' (see dlsim -fault)")
		faultSeed = flag.Int64("faultseed", spec.DefaultFaultSeed, "seed for the fault plan's error draws")

		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dlbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dlbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *list || *id == "" {
		fmt.Println("available experiments:")
		for _, e := range exp.All() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
		}
		if *id == "" && !*list {
			os.Exit(2)
		}
		return
	}

	// The flag set maps 1:1 onto the canonical exp-kind job spec shared
	// with dlserve; spec validation catches unknown experiments and
	// malformed fault plans up front, with one set of defaults for every
	// binary.
	sp, err := spec.Spec{
		Kind: spec.KindExp, Exp: *id, Full: *full,
		Seed: *seed, Fault: *faultSpec, FaultSeed: *faultSeed,
	}.Normalized()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlbench: %v (use -list)\n", err)
		os.Exit(1)
	}
	opts, err := sp.ExpOptions(nil, *jobs, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlbench: %v\n", err)
		os.Exit(1)
	}
	opts.Shards = *shards
	opts.Parallel = *parallel
	if *parallel && *shards <= 1 {
		fmt.Fprintln(os.Stderr, "dlbench: -parallel requires -shards > 1")
		os.Exit(2)
	}
	targets, err := sp.Targets()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlbench: %v (use -list)\n", err)
		os.Exit(1)
	}

	grandStart := time.Now()
	for _, e := range targets {
		start := time.Now()
		fmt.Printf("### %s — %s\n\n", e.ID, e.Title)
		runOpts := opts
		if !*quiet {
			// Per-job progress: one stderr line per completed simulation,
			// rewritten in place. The callback is serialized by the engine.
			eid := e.ID
			runOpts.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d jobs", eid, done, total)
				if done == total {
					fmt.Fprint(os.Stderr, "\n")
				}
			}
		}
		tables := e.Run(runOpts)
		for i, tb := range tables {
			tb.Render(os.Stdout)
			fmt.Println()
			if *csv != "" {
				if err := os.MkdirAll(*csv, 0o755); err != nil {
					fmt.Fprintln(os.Stderr, "dlbench:", err)
					os.Exit(1)
				}
				path := filepath.Join(*csv, fmt.Sprintf("%s_%d.csv", e.ID, i))
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintln(os.Stderr, "dlbench:", err)
					os.Exit(1)
				}
				tb.CSV(f)
				f.Close()
			}
		}
		// Timing goes to stderr with the progress lines: stdout carries only
		// the tables, so redirected output is byte-identical across -jobs.
		fmt.Fprintf(os.Stderr, "(%s completed in %.1fs)\n", e.ID, time.Since(start).Seconds())
	}
	if len(targets) > 1 {
		fmt.Fprintf(os.Stderr, "(total: %d experiments in %.1fs with %d jobs)\n",
			len(targets), time.Since(grandStart).Seconds(), opts.Jobs)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dlbench:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dlbench:", err)
			os.Exit(1)
		}
		f.Close()
	}
}
