// dlsim runs a single DIMM-NMP simulation: pick a system size, an
// inter-DIMM communication mechanism and a workload, and get the makespan,
// speedup-relevant counters and the energy breakdown.
//
// Examples:
//
//	dlsim -mech dimm-link -dimms 8 -channels 4 -workload bfs -scale 15
//	dlsim -mech mcn -workload pr -iters 5
//	dlsim -mech dimm-link -topology torus -linkbw 50e9 -workload hotspot
//	tracegen -workload bfs | dlsim -tracein - -map page
//
// With -tracein, dlsim replays an external trace (text or binary ingest
// format, "-" for stdin) instead of a synthetic workload: the trace's
// raw addresses are translated onto the simulated DIMMs by the -map
// policy, and the run is content-addressed by the trace's canonical
// hash — a dlserve trace-kind job over the uploaded trace returns the
// same stdout byte-for-byte.
//
// The flag set is a 1:1 surface over the canonical job spec in
// internal/spec, which dlserve serves over HTTP: a dlserve job with the
// same spec returns this binary's stdout byte-for-byte.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/nmp"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
)

func main() {
	var (
		mech      = flag.String("mech", spec.DefaultMech, "mechanism: dimm-link | mcn | aim | abc-dimm | host-cpu")
		dimms     = flag.Int("dimms", spec.DefaultDIMMs, "number of DIMMs")
		channels  = flag.Int("channels", spec.DefaultChannels, "number of memory channels")
		workload  = flag.String("workload", spec.DefaultWorkload, "workload: bfs | hotspot | kmeans | nw | pr | sssp | spmv | tspow | gemv | histo | train | p2p | sync")
		scale     = flag.Int("scale", spec.DefaultScale, "graph scale (2^scale vertices) / problem size class")
		ef        = flag.Int("ef", spec.DefaultEdgeFactor, "graph edge factor")
		iters     = flag.Int("iters", spec.DefaultIters, "iterations (pr, kmeans, hotspot, spmv)")
		seed      = flag.Int64("seed", spec.DefaultSeed, "input generator seed")
		topology  = flag.String("topology", spec.DefaultTopology, "DIMM-Link topology: chain | ring | mesh | torus")
		linkbw    = flag.Float64("linkbw", spec.DefaultLinkBW, "DIMM-Link per-link bandwidth (bytes/s)")
		polling   = flag.String("polling", "", "polling mode override: base | base+itrpt | proxy | proxy+itrpt")
		cxl       = flag.Bool("cxl", false, "disaggregated mode: inter-group traffic over CXL instead of host forwarding")
		bcast     = flag.Bool("broadcast", false, "use the broadcast formulation (pr, sssp, spmv)")
		coll      = flag.String("coll", "", "collective algorithm override: ring | hd | tree (default: auto per mechanism/topology)")
		profile   = flag.Bool("profile", false, "record the per-thread traffic matrix")
		faultSpec = flag.String("fault", "", "link-fault plan, e.g. 'ber=1e-7,down=0-1@10us,stall=2-3@5us+20us,degrade=1-2@0*0.5' (dimm-link only)")
		faultSeed = flag.Int64("faultseed", spec.DefaultFaultSeed, "seed for the fault plan's error draws")

		traceIn  = flag.String("tracein", "", "replay an external trace file (ingest text or binary format; '-' = stdin) instead of a synthetic workload")
		mapPol   = flag.String("map", spec.DefaultMap, "address->DIMM mapping policy for -tracein: direct | page | first-touch")
		pageSize = flag.Int("page", spec.DefaultPageBytes, "page size in bytes for the page / first-touch mapping policies")
		traffic  = flag.String("traffic", "", "write the inter-DIMM traffic-matrix report (CSV) to this file; stdout is unchanged")

		shards   = flag.Int("shards", 0, "run on the sharded event kernel with N lanes (0/1 = single queue; output is byte-identical for every value)")
		parallel = flag.Bool("parallel", false, "run lane-confined kernel phases concurrently (requires -shards > 1; output is byte-identical to the merged run)")

		withMetrics = flag.Bool("metrics", false, "attach the observability layer and report latency percentiles and per-link utilization")
		tracePath   = flag.String("trace", "", "write a JSONL event trace to this file (implies -metrics; stdout is unchanged by tracing)")
		samplePd    = flag.Uint64("sample", 0, "sample link utilization every N ns of simulated time (implies -metrics; 0 disables)")
		cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var (
		sp spec.Spec
		td *ingest.Data
	)
	if *traceIn != "" {
		var err error
		td, err = loadTrace(*traceIn)
		if err != nil {
			fatal(err)
		}
		sp, err = spec.Spec{
			Kind: spec.KindTrace,
			Mech: *mech, DIMMs: *dimms, Channels: *channels,
			Topology: *topology, LinkBW: *linkbw, Polling: *polling, CXL: *cxl,
			Trace: td.Hash, Map: *mapPol, PageBytes: *pageSize,
			Fault: *faultSpec, FaultSeed: *faultSeed,
		}.Normalized()
		if err != nil {
			fatal(err)
		}
	} else {
		var err error
		sp, err = spec.Spec{
			Kind: spec.KindSim,
			Mech: *mech, DIMMs: *dimms, Channels: *channels,
			Workload: *workload, Scale: *scale, EdgeFactor: *ef, Iters: *iters,
			Topology: *topology, LinkBW: *linkbw, Polling: *polling,
			CXL: *cxl, Broadcast: *bcast, Coll: *coll,
			Seed: *seed, Fault: *faultSpec, FaultSeed: *faultSeed,
		}.Normalized()
		if err != nil {
			fatal(err)
		}
	}

	// The observability layer is passive: an instrumented run is
	// timing-identical to a bare one, and tracing only adds a side file.
	// -trace alone therefore leaves stdout byte-identical to a bare run;
	// the printed report is opted into with -metrics or -sample and is
	// itself byte-identical with and without -trace.
	var hooks spec.SimHooks
	hooks.Profile = *profile
	hooks.Shards = *shards
	hooks.Parallel = *parallel
	if *parallel && *shards <= 1 {
		fmt.Fprintln(os.Stderr, "dlsim: -parallel requires -shards > 1")
		os.Exit(2)
	}
	var traceFile *os.File
	report := *withMetrics || *samplePd > 0
	if report || *tracePath != "" {
		hooks.Metrics = metrics.NewCollector()
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fatal(err)
			}
			traceFile = f
			hooks.Metrics.Trace = metrics.NewTracer(f)
		}
		hooks.SamplePeriod = sim.Time(*samplePd) * sim.Nanosecond
	}

	var (
		run *spec.SimRun
		err error
	)
	if td != nil {
		run, err = sp.ReplayTrace(td, hooks)
	} else {
		run, err = sp.RunSim(hooks)
	}
	if err != nil {
		fatal(err)
	}
	run.Report(os.Stdout)

	if *traffic != "" {
		f, err := os.Create(*traffic)
		if err != nil {
			fatal(err)
		}
		if err := run.WriteTrafficCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if report {
		reportMetrics(hooks.Metrics, run.Sys, run.Res.Makespan)
	}
	if traceFile != nil {
		if err := hooks.Metrics.Trace.Close(); err != nil {
			fatal(err)
		}
		if err := traceFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dlsim: wrote %d trace events to %s\n",
			hooks.Metrics.Trace.Events(), *tracePath)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

// reportMetrics prints the observability summary: every recorded latency
// histogram's percentiles, the per-link utilization of each DL link at
// the makespan, and — when the sampler ran — the peak sampled value of
// each series.
func reportMetrics(coll *metrics.Collector, sys *nmp.System, makespan sim.Time) {
	names := coll.Reg.HistNames()
	lt := stats.NewTable("latency histograms (ns)",
		"metric", "count", "p50", "p95", "p99", "p999", "mean", "max")
	rows := 0
	for _, name := range names {
		h := coll.Reg.Hist(name)
		if h.Count() == 0 {
			continue
		}
		rows++
		lt.Addf(name, fmt.Sprintf("%d", h.Count()),
			float64(h.Quantile(0.50))/1000, float64(h.Quantile(0.95))/1000,
			float64(h.Quantile(0.99))/1000, float64(h.Quantile(0.999))/1000,
			h.Mean()/1000, float64(h.Max())/1000)
	}
	if rows > 0 {
		fmt.Println()
		lt.Render(os.Stdout)
	}

	if sys.Link != nil {
		ut := stats.NewTable("per-link utilization over the kernel", "link", "utilization")
		for gi, net := range sys.Link.Networks() {
			snap := net.UtilizationSnapshot(makespan)
			for i, key := range net.LinkKeys() {
				ut.Addf(fmt.Sprintf("g%d %s", gi, key), snap[i])
			}
		}
		fmt.Println()
		ut.Render(os.Stdout)
	}

	if sp := sys.Sampler(); sp != nil {
		st := stats.NewTable(fmt.Sprintf("sampled series (period %d ns)", sp.Period()/sim.Nanosecond),
			"series", "samples", "mean", "max")
		for _, s := range sp.Series() {
			st.Addf(s.Name, fmt.Sprintf("%d", len(s.V)), s.Mean(), s.Max())
		}
		fmt.Println()
		st.Render(os.Stdout)
	}
}

// loadTrace fully ingests an external trace from a file or stdin ("-"),
// validating it and computing its canonical content hash.
func loadTrace(path string) (*ingest.Data, error) {
	var src *os.File
	if path == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		src = f
	}
	return ingest.ReadAll(src)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlsim:", err)
	os.Exit(1)
}
