// dlsim runs a single DIMM-NMP simulation: pick a system size, an
// inter-DIMM communication mechanism and a workload, and get the makespan,
// speedup-relevant counters and the energy breakdown.
//
// Examples:
//
//	dlsim -mech dimm-link -dimms 8 -channels 4 -workload bfs -scale 15
//	dlsim -mech mcn -workload pr -iters 5
//	dlsim -mech dimm-link -topology torus -linkbw 50e9 -workload hotspot
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/host"
	"repro/internal/metrics"
	"repro/internal/nmp"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func main() {
	var (
		mech      = flag.String("mech", "dimm-link", "mechanism: dimm-link | mcn | aim | abc-dimm | host-cpu")
		dimms     = flag.Int("dimms", 8, "number of DIMMs")
		channels  = flag.Int("channels", 4, "number of memory channels")
		workload  = flag.String("workload", "bfs", "workload: bfs | hotspot | kmeans | nw | pr | sssp | spmv | tspow | gemv | histo | p2p | sync")
		scale     = flag.Int("scale", 14, "graph scale (2^scale vertices) / problem size class")
		ef        = flag.Int("ef", 8, "graph edge factor")
		iters     = flag.Int("iters", 4, "iterations (pr, kmeans, hotspot, spmv)")
		seed      = flag.Int64("seed", 42, "input generator seed")
		topology  = flag.String("topology", "chain", "DIMM-Link topology: chain | ring | mesh | torus")
		linkbw    = flag.Float64("linkbw", 25e9, "DIMM-Link per-link bandwidth (bytes/s)")
		polling   = flag.String("polling", "", "polling mode override: base | base+itrpt | proxy | proxy+itrpt")
		cxl       = flag.Bool("cxl", false, "disaggregated mode: inter-group traffic over CXL instead of host forwarding")
		bcast     = flag.Bool("broadcast", false, "use the broadcast formulation (pr, sssp, spmv)")
		profile   = flag.Bool("profile", false, "record the per-thread traffic matrix")
		faultSpec = flag.String("fault", "", "link-fault plan, e.g. 'ber=1e-7,down=0-1@10us,stall=2-3@5us+20us,degrade=1-2@0*0.5' (dimm-link only)")
		faultSeed = flag.Int64("faultseed", 1, "seed for the fault plan's error draws")

		withMetrics = flag.Bool("metrics", false, "attach the observability layer and report latency percentiles and per-link utilization")
		tracePath   = flag.String("trace", "", "write a JSONL event trace to this file (implies -metrics; stdout is unchanged by tracing)")
		samplePd    = flag.Uint64("sample", 0, "sample link utilization every N ns of simulated time (implies -metrics; 0 disables)")
		cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := nmp.DefaultConfig(*dimms, *channels, nmp.Mechanism(*mech))
	if *faultSpec != "" {
		plan, err := fault.ParsePlan(*faultSpec, *faultSeed)
		if err != nil {
			fatal(err)
		}
		cfg.DL.Fault = plan
	}
	cfg.DL.Topology = core.TopologyKind(*topology)
	cfg.DL.Link.BytesPerSec = *linkbw
	if *cxl {
		cfg.DL.InterGroup = core.ViaCXL
	}
	if *polling != "" {
		mode, err := parsePolling(*polling)
		if err != nil {
			fatal(err)
		}
		cfg.Host.Mode = mode
	}

	// The observability layer is passive: an instrumented run is
	// timing-identical to a bare one, and tracing only adds a side file.
	// -trace alone therefore leaves stdout byte-identical to a bare run;
	// the printed report is opted into with -metrics or -sample and is
	// itself byte-identical with and without -trace.
	var coll *metrics.Collector
	var traceFile *os.File
	report := *withMetrics || *samplePd > 0
	if report || *tracePath != "" {
		coll = metrics.NewCollector()
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fatal(err)
			}
			traceFile = f
			coll.Trace = metrics.NewTracer(f)
		}
		cfg.Metrics = coll
	}

	sys, err := nmp.NewSystem(cfg)
	if err != nil {
		fatal(err)
	}
	if coll != nil && *samplePd > 0 {
		sys.StartSampler(sim.Time(*samplePd) * sim.Nanosecond)
	}

	w, err := buildWorkload(*workload, *scale, *ef, *iters, *seed, *bcast, sys)
	if err != nil {
		fatal(err)
	}

	res, checksum, err := w.Run(sys, sys.DefaultPlacement(), *profile)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("workload   %s on %s (%dD-%dC)\n", w.Name(), *mech, *dimms, *channels)
	if cfg.DL.Fault.Active() {
		fmt.Printf("faults     %s (seed %d)\n", cfg.DL.Fault, cfg.DL.Fault.Seed)
	}
	fmt.Printf("makespan   %.3f ms\n", float64(res.Makespan)/1e9)
	fmt.Printf("idc-stall  %.1f%% (non-overlapped IDC cycle ratio)\n", 100*res.IDCStallRatio())
	fmt.Printf("checksum   %#x\n", checksum)

	ds := make([]dram.Stats, len(sys.Modules))
	var reads, writes, acts uint64
	for i, m := range sys.Modules {
		ds[i] = m.Stats
		reads += m.Stats.Reads
		writes += m.Stats.Writes
		acts += m.Stats.Activations
	}
	fmt.Printf("dram       %d reads, %d writes, %d activations\n", reads, writes, acts)

	in := energy.Inputs{
		Makespan: res.Makespan, NumDIMMs: *dimms, DRAMStats: ds,
		IsHostRun: nmp.Mechanism(*mech) == nmp.MechHostCPU,
	}
	if sys.IC != nil {
		in.IC = sys.IC.Counters()
		tb := stats.NewTable("interconnect counters", "counter", "value")
		c := sys.IC.Counters()
		for _, name := range c.Names() {
			tb.Addf(name, c.Get(name))
		}
		fmt.Println()
		tb.Render(os.Stdout)
	}
	if sys.Host() != nil {
		in.Host = &sys.Host().Counters
		fmt.Printf("\nhost bus occupation: %.2f%%\n", 100*sys.Host().BusOccupation(res.Makespan))
	}
	b := energy.Compute(energy.PaperParams(), in)
	fmt.Printf("energy     %.4f J total (dram %.4f, idc %.4f, cores %.4f)\n",
		b.Total, b.DRAM, b.IDC, b.Cores)

	if report {
		reportMetrics(coll, sys, res.Makespan)
	}
	if traceFile != nil {
		if err := coll.Trace.Close(); err != nil {
			fatal(err)
		}
		if err := traceFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dlsim: wrote %d trace events to %s\n",
			coll.Trace.Events(), *tracePath)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

// reportMetrics prints the observability summary: every recorded latency
// histogram's percentiles, the per-link utilization of each DL link at
// the makespan, and — when the sampler ran — the peak sampled value of
// each series.
func reportMetrics(coll *metrics.Collector, sys *nmp.System, makespan sim.Time) {
	names := coll.Reg.HistNames()
	lt := stats.NewTable("latency histograms (ns)",
		"metric", "count", "p50", "p95", "p99", "p999", "mean", "max")
	rows := 0
	for _, name := range names {
		h := coll.Reg.Hist(name)
		if h.Count() == 0 {
			continue
		}
		rows++
		lt.Addf(name, fmt.Sprintf("%d", h.Count()),
			float64(h.Quantile(0.50))/1000, float64(h.Quantile(0.95))/1000,
			float64(h.Quantile(0.99))/1000, float64(h.Quantile(0.999))/1000,
			h.Mean()/1000, float64(h.Max())/1000)
	}
	if rows > 0 {
		fmt.Println()
		lt.Render(os.Stdout)
	}

	if sys.Link != nil {
		ut := stats.NewTable("per-link utilization over the kernel", "link", "utilization")
		for gi, net := range sys.Link.Networks() {
			for _, key := range net.LinkKeys() {
				ut.Addf(fmt.Sprintf("g%d %s", gi, key), net.OneLinkUtilization(key, makespan))
			}
		}
		fmt.Println()
		ut.Render(os.Stdout)
	}

	if sp := sys.Sampler(); sp != nil {
		st := stats.NewTable(fmt.Sprintf("sampled series (period %d ns)", sp.Period()/sim.Nanosecond),
			"series", "samples", "mean", "max")
		for _, s := range sp.Series() {
			st.Addf(s.Name, fmt.Sprintf("%d", len(s.V)), s.Mean(), s.Max())
		}
		fmt.Println()
		st.Render(os.Stdout)
	}
}

func parsePolling(s string) (host.PollingMode, error) {
	switch s {
	case "base":
		return host.BasePolling, nil
	case "base+itrpt":
		return host.BaseInterrupt, nil
	case "proxy":
		return host.ProxyPolling, nil
	case "proxy+itrpt":
		return host.ProxyInterrupt, nil
	}
	return 0, fmt.Errorf("unknown polling mode %q", s)
}

func buildWorkload(name string, scale, ef, iters int, seed int64, bcast bool, sys *nmp.System) (workloads.Workload, error) {
	switch strings.ToLower(name) {
	case "bfs":
		return workloads.NewBFSFromGraph(workloads.Community(scale, ef, seed)), nil
	case "hotspot", "hs":
		rows := 1 << uint(scale/2)
		return workloads.NewHotspot(rows, rows, iters), nil
	case "kmeans", "km":
		return workloads.NewKMeans(1<<uint(scale), 16, 16, iters, seed), nil
	case "nw":
		return workloads.NewNW(1<<uint(scale/2+2), 64, seed), nil
	case "pr", "pagerank":
		w := workloads.NewPageRankFromGraph(workloads.Community(scale, ef, seed), iters)
		w.Broadcast = bcast
		return w, nil
	case "sssp":
		w := workloads.NewSSSPFromGraph(workloads.Community(scale, ef, seed))
		w.Broadcast = bcast
		return w, nil
	case "spmv":
		w := workloads.NewSpMVFromGraph(workloads.Community(scale, ef, seed), iters)
		w.Broadcast = bcast
		return w, nil
	case "tspow", "ts":
		return workloads.NewTSPow(1<<uint(scale+4), 64, 4096, seed), nil
	case "p2p":
		return &workloads.P2PBench{SrcDIMM: 0, DstDIMM: sys.Cfg.Geo.NumDIMMs - 1,
			TransferBytes: 4096, TotalBytes: 1 << 22}, nil
	case "sync":
		return &workloads.SyncBench{Interval: 500, Rounds: 50}, nil
	case "gemv":
		w := workloads.NewGEMV(1<<uint(scale/2+2), 1<<uint(scale/2), iters, seed)
		w.Broadcast = bcast
		return w, nil
	case "histo", "histogram":
		return workloads.NewHistogram(1<<uint(scale+4), 256, seed), nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlsim:", err)
	os.Exit(1)
}
