// dlserve runs the simulator as a service: an HTTP/JSON API over the
// canonical job spec (internal/spec), with a bounded job queue, a
// worker pool, a content-addressed result cache, an optional disk-spill
// result store, and /healthz + /metrics endpoints. See internal/serve
// for the API.
//
// Examples:
//
//	dlserve -addr :8077
//	dlserve -addr 127.0.0.1:0 -workers 4 -queue 32 -sidedir /tmp/dlserve
//	dlserve -addr :8077 -store /var/lib/dlserve/results
//
//	curl -s -X POST localhost:8077/v1/jobs \
//	     -d '{"kind":"sim","workload":"p2p","dimms":4,"channels":2}'
//
// With -peers, the node joins a cluster: submissions are routed to the
// spec's owner on a consistent-hash ring, content-addressed reads
// (/v1/results/{hash}) read through to peers, dead peers are marked
// suspect, routed around and probed back to health. Every node must be
// started with the same -peers set:
//
//	dlserve -addr :8077 -store s1 -peers http://h1:8077,http://h2:8077,http://h3:8077
//
// On SIGTERM/SIGINT the server drains: submissions are rejected with
// 503 while queued and running jobs finish and their results stay
// retrievable (use ?wait=1 on the result endpoint), then the listener
// shuts down and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/cluster"
	"repro/internal/serve/store"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8077", "listen address (host:port; port 0 picks a free port)")
		workers    = flag.Int("workers", 2, "job worker-pool width")
		queue      = flag.Int("queue", 16, "pending-job queue depth (full queue rejects with 429)")
		cache      = flag.Int("cache", 64, "result cache bound (entries)")
		expJobs    = flag.Int("jobs", 0, "per-experiment grid pool width (0 = GOMAXPROCS); output is identical for every value")
		shards     = flag.Int("shards", 0, "sharded event kernel lanes per simulation (0/1 = single queue); output is identical for every value")
		parallel   = flag.Bool("parallel", false, "run lane-confined kernel phases concurrently on sharded simulations (requires -shards > 1; output is identical)")
		jobTimeout = flag.Duration("jobtimeout", 0, "per-job wall-clock bound (0 = none)")
		sideDir    = flag.String("sidedir", "", "directory for per-job side files (spec, trace, status)")
		drainGrace = flag.Duration("drain", 2*time.Minute, "max time to wait for in-flight jobs on shutdown before canceling them")
		storeDir   = flag.String("store", "", "disk-spill result store directory (content-addressed, survives restarts)")
		storeMax   = flag.Int("storemax", 4096, "disk store bound (entries, evicted oldest-first)")
		tracesDir  = flag.String("traces", "", "uploaded-trace blob store directory (default: <store>/traces when -store is set, else a temp dir)")
		peers      = flag.String("peers", "", "comma-separated cluster node base URLs, this node included (enables cluster routing)")
		selfURL    = flag.String("self", "", "this node's base URL as peers address it (default http://<listen addr>)")
		vnodes     = flag.Int("vnodes", 0, "consistent-hash virtual nodes per ring member (0 = default)")
		probe      = flag.Duration("probe", 2*time.Second, "suspect-peer health probe interval")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags)
	if *parallel && *shards <= 1 {
		logger.Fatalf("dlserve: -parallel requires -shards > 1")
	}
	if *sideDir != "" {
		if err := os.MkdirAll(*sideDir, 0o755); err != nil {
			logger.Fatalf("dlserve: sidedir: %v", err)
		}
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, *storeMax)
		if err != nil {
			logger.Fatalf("dlserve: store: %v", err)
		}
		logger.Printf("dlserve: disk store %s (%d entries)", st.Dir(), st.Len())
	}

	// Traces always get a blob store: next to the result store when one is
	// configured, otherwise in a throwaway temp dir (uploads then live for
	// the process lifetime only, which still serves the common
	// upload-then-submit flow).
	tdir := *tracesDir
	if tdir == "" {
		if *storeDir != "" {
			tdir = *storeDir + "/traces"
		} else {
			var err error
			tdir, err = os.MkdirTemp("", "dlserve-traces-")
			if err != nil {
				logger.Fatalf("dlserve: traces: %v", err)
			}
		}
	}
	traces, err := store.OpenBlobs(tdir)
	if err != nil {
		logger.Fatalf("dlserve: traces: %v", err)
	}
	logger.Printf("dlserve: trace store %s (%d traces)", traces.Dir(), traces.Len())

	srv := serve.NewServer(serve.Config{
		Workers: *workers, QueueDepth: *queue, CacheEntries: *cache,
		ExpJobs: *expJobs, Shards: *shards, Parallel: *parallel, JobTimeout: *jobTimeout, SideDir: *sideDir,
		Store: st, Traces: traces,
		Logf: logger.Printf,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("dlserve: listen: %v", err)
	}

	handler := http.Handler(srv)
	var rt *cluster.Router
	if *peers != "" {
		self := *selfURL
		if self == "" {
			self = "http://" + ln.Addr().String()
		}
		var nodes []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				nodes = append(nodes, p)
			}
		}
		rt, err = cluster.NewRouter(cluster.RouterConfig{
			Self: self, Nodes: nodes, VNodes: *vnodes,
			Local: srv, ProbeInterval: *probe, Logf: logger.Printf,
		})
		if err != nil {
			logger.Fatalf("dlserve: cluster: %v", err)
		}
		handler = rt
		logger.Printf("dlserve: cluster node %s in ring of %d", self, len(nodes))
	}

	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The listening line goes to stdout so scripts (ci.sh's smoke) can
	// discover an ephemeral port.
	fmt.Printf("dlserve: listening on http://%s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigCh:
		logger.Printf("dlserve: %s: draining (in-flight jobs finish, submissions get 503)", sig)
		if rt != nil {
			rt.Close() // stop probing peers; local serving continues through drain
		}
		// Drain jobs first, while the listener still serves status and
		// result reads — clients blocked on ?wait=1 get their bodies.
		dctx, dcancel := context.WithTimeout(context.Background(), *drainGrace)
		if err := srv.Drain(dctx); err != nil {
			logger.Printf("dlserve: drain: %v (in-flight jobs canceled)", err)
		}
		dcancel()
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := hs.Shutdown(sctx); err != nil {
			logger.Printf("dlserve: shutdown: %v", err)
		}
		scancel()
		logger.Printf("dlserve: drained, exiting")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Fatalf("dlserve: serve: %v", err)
		}
	}
}
