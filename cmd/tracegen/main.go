// tracegen dumps a workload's memory trace in the ingest formats of
// internal/ingest — the trace-driven mode the paper's FPGA prototype
// uses ("we use pre-dumped traces to drive the system"). The trace can
// be replayed on any system configuration via dlsim -tracein (or
// uploaded to dlserve and run as a trace-kind job); both encodings
// carry the same canonical content hash.
//
// Examples:
//
//	tracegen -workload bfs -scale 12 -out bfs.trace
//	tracegen -workload pr -format binary | dlsim -tracein - -map direct
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cores"
	"repro/internal/ingest"
	"repro/internal/nmp"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "bfs", "workload: bfs | pr | sssp")
		scale    = flag.Int("scale", 12, "graph scale")
		ef       = flag.Int("ef", 8, "edge factor")
		iters    = flag.Int("iters", 2, "iterations (pr)")
		seed     = flag.Int64("seed", 42, "generator seed")
		dimms    = flag.Int("dimms", 4, "DIMMs in the recording system")
		channels = flag.Int("channels", 2, "channels in the recording system")
		format   = flag.String("format", "text", "output encoding: text | binary (same canonical hash either way)")
		out      = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var enc ingest.Format
	switch *format {
	case "text":
		enc = ingest.FormatText
	case "binary":
		enc = ingest.FormatBinary
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown format %q (text | binary)\n", *format)
		os.Exit(1)
	}

	var w workloads.Workload
	g := workloads.Community(*scale, *ef, *seed)
	switch *workload {
	case "bfs":
		w = workloads.NewBFSFromGraph(g)
	case "pr":
		w = workloads.NewPageRankFromGraph(g, *iters)
	case "sssp":
		w = workloads.NewSSSPFromGraph(g)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown workload %q\n", *workload)
		os.Exit(1)
	}

	sys := nmp.MustNewSystem(nmp.DefaultConfig(*dimms, *channels, nmp.MechDIMMLink))
	var rec *trace.Recorder
	sys.InstrumentMemory(func(inner cores.Memory) cores.Memory {
		rec = trace.NewRecorder(inner, sys.Threads(), sys.Cfg.NMPCore.ClockHz)
		return rec
	})
	if _, _, err := w.Run(sys, sys.DefaultPlacement(), false); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	if err := ingest.WriteTrace(dst, &rec.Trace, enc); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d records from %d threads\n",
		len(rec.Trace.Records), rec.Trace.Threads)
}
