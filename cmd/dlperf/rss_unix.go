//go:build unix

package main

import "syscall"

// peakRSS returns the process's peak resident set size in bytes, or 0 if
// it cannot be read. Linux reports ru_maxrss in KiB.
func peakRSS() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Maxrss * 1024
}
