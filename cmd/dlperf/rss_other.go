//go:build !unix

package main

// peakRSS is unavailable off unix; the trajectory column records 0.
func peakRSS() int64 { return 0 }
