// dlperf benchmarks the simulation kernel and records the result as one
// point of the repository's performance trajectory.
//
// It runs a fixed scenario suite — a pure event-kernel microbenchmark, a
// link-saturating P2P transfer, and the Table IV workload suite end to
// end — and writes BENCH_<label>.json with events/sec, wall time,
// allocs/op, peak RSS and the per-suite sim-time/real-time ratio.
// Committing the file after a perf-relevant PR extends the trajectory:
//
//	dlperf -label seed            # before the change
//	dlperf -label pr5             # after the change
//	dlperf -label ci -quick       # the ci.sh smoke (fast inputs)
//
// The scenarios are deterministic (fixed seeds, fixed input sizes per
// mode), so two runs differ only in machine speed; events/sec and
// allocs/op are the comparable columns. The tool exits non-zero if any
// suite records a non-positive event rate, which the ci.sh smoke relies
// on as a liveness check.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/ingest"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/trace"
)

// suiteResult is one scenario's measured row.
type suiteResult struct {
	Name         string  `json:"name"`
	Events       uint64  `json:"events"`  // engine events executed
	WallNS       int64   `json:"wall_ns"` // host wall-clock time
	EventsPerSec float64 `json:"events_per_sec"`
	AllocsPerOp  float64 `json:"allocs_per_op"` // heap allocations per event
	SimNS        uint64  `json:"sim_ns"`        // simulated time covered
	SimRealRatio float64 `json:"sim_real_ratio"`

	// Sharded-kernel columns (kernel-par suite only).
	Shards               int     `json:"shards,omitempty"`
	SpeedupVsSingleShard float64 `json:"speedup_vs_single_shard,omitempty"`

	// Phase-parallel column (model-par suite only): wall-clock ratio of
	// the merged-mode run to the SetParallel(true) run of the same spec.
	SpeedupVsMerged float64 `json:"speedup_vs_merged,omitempty"`
}

// benchFile is the BENCH_<label>.json schema.
type benchFile struct {
	Label        string        `json:"label"`
	Quick        bool          `json:"quick"`
	GoVersion    string        `json:"go_version"`
	GOMAXPROCS   int           `json:"gomaxprocs"`
	Suites       []suiteResult `json:"suites"`
	PeakRSSBytes int64         `json:"peak_rss_bytes"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(runCompare(os.Args[2:]))
	}
	var (
		label = flag.String("label", "dev", "trajectory point label; output is BENCH_<label>.json")
		quick = flag.Bool("quick", false, "small inputs (the ci.sh smoke); full inputs otherwise")
		out   = flag.String("o", ".", "directory to write BENCH_<label>.json into")
	)
	flag.Parse()

	suites := []struct {
		name string
		run  func(quick bool) suiteResult
	}{
		{"kernel", benchKernel},
		{"kernel-par", benchKernelPar},
		{"model-par", benchModelPar},
		{"noc-p2p", benchP2P},
		{"table4-suite", benchTableIV},
		{"collective", benchCollective},
		{"ingest", benchIngest},
	}

	bf := benchFile{
		Label:      *label,
		Quick:      *quick,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	ok := true
	for _, s := range suites {
		r := s.run(*quick)
		r.Name = s.name
		if r.WallNS > 0 {
			r.EventsPerSec = float64(r.Events) / (float64(r.WallNS) / 1e9)
			r.SimRealRatio = float64(r.SimNS) / float64(r.WallNS)
		}
		if r.EventsPerSec <= 0 {
			ok = false
		}
		fmt.Printf("%-14s %12d events  %8.1f ms wall  %12.0f events/s  %7.2f allocs/op  %8.3f sim/real\n",
			r.Name, r.Events, float64(r.WallNS)/1e6, r.EventsPerSec, r.AllocsPerOp, r.SimRealRatio)
		bf.Suites = append(bf.Suites, r)
	}
	bf.PeakRSSBytes = peakRSS()

	path := filepath.Join(*out, fmt.Sprintf("BENCH_%s.json", *label))
	b, err := json.MarshalIndent(&bf, "", "  ")
	if err != nil {
		fatal(err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (peak RSS %.1f MiB)\n", path, float64(bf.PeakRSSBytes)/(1<<20))
	if !ok {
		fatal(fmt.Errorf("a suite recorded a non-positive event rate"))
	}
}

// benchKernel measures raw event-kernel throughput: a fixed population of
// self-rescheduling actors keeps the heap at a steady depth while events
// churn through it, which is exactly the Engine's duty cycle under a real
// simulation (heap push/pop dominates; callbacks are trivial).
func benchKernel(quick bool) suiteResult {
	total := uint64(20_000_000)
	reps := 3
	if quick {
		total = 2_000_000
		reps = 1
	}
	const actors = 512
	// Best-of-N: the minimum wall time is the least noise-contaminated
	// observation, so trajectory points compare machine speed rather than
	// draws from the host scheduler-noise distribution.
	var best suiteResult
	for r := 0; r < reps; r++ {
		eng := sim.NewEngine()
		// Deterministic LCG delays spread actors across the timeline so pops
		// interleave like real traffic rather than draining FIFO.
		rng := uint64(0x9e3779b97f4a7c15)
		var scheduled uint64
		fns := make([]func(), actors)
		for i := range fns {
			fns[i] = func() {
				if scheduled < total {
					scheduled++
					rng = rng*6364136223846793005 + 1442695040888963407
					eng.After(sim.Time(rng>>48)+1, fns[i%actors])
				}
			}
		}
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for i := range fns {
			scheduled++
			eng.After(sim.Time(i)+1, fns[i])
		}
		eng.Run()
		wall := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if r == 0 || wall.Nanoseconds() < best.WallNS {
			best = suiteResult{
				Events:      eng.Processed(),
				WallNS:      wall.Nanoseconds(),
				AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(eng.Processed()),
				SimNS:       eng.Now() / uint64(sim.Nanosecond),
			}
		}
	}
	return best
}

// benchKernelPar measures the sharded event kernel on the same duty cycle
// as benchKernel, scaled out: ShardBench partitions the actor population
// into lane-owned groups with cross-group mail riding the deterministic
// mailbox. A single-lane run is measured first as the baseline, then the
// sharded run; the recorded row is the sharded one, with the speedup
// column. The digests must match — the run aborts otherwise — so the row
// only ever reports correctly-ordered work. On a single-core host the
// speedup comes from cache residency: each lane's heap is a fraction of
// the monolithic heap, and window bursts keep it hot.
func benchKernelPar(quick bool) suiteResult {
	cfg := sim.ShardBenchConfig{
		Groups:     64,
		PerGroup:   8192,
		Events:     20_000_000,
		MaxDelay:   1 << 14,
		Lookahead:  8192,
		CrossEvery: 64,
		Seed:       0x9e3779b9,
	}
	reps := 3
	if quick {
		cfg.PerGroup = 1024
		cfg.Events = 2_000_000
		reps = 1
	}
	const lanes = 16

	// Best-of-N on both sides: each side's minimum wall time is the least
	// noise-contaminated observation, so their ratio is the steady-state
	// speedup rather than a draw from the scheduler-noise distribution.
	measure := func(n int) (best time.Duration, res sim.ShardBenchResult, allocs uint64) {
		for r := 0; r < reps; r++ {
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			res = sim.RunShardBench(n, cfg)
			wall := time.Since(start)
			runtime.ReadMemStats(&ms1)
			if r == 0 || wall < best {
				best = wall
				allocs = ms1.Mallocs - ms0.Mallocs
			}
		}
		return best, res, allocs
	}
	baseWall, base, _ := measure(1)
	wall, got, allocs := measure(lanes)

	if got.Digest != base.Digest || got.Events != base.Events {
		fatal(fmt.Errorf("kernel-par: sharded run diverged from single-lane run: %+v vs %+v", got, base))
	}
	speedup := 0.0
	if wall > 0 {
		speedup = float64(baseWall) / float64(wall)
	}
	return suiteResult{
		Events:               got.Events,
		WallNS:               wall.Nanoseconds(),
		AllocsPerOp:          float64(allocs) / float64(got.Events),
		SimNS:                got.SimSpan / uint64(sim.Nanosecond),
		Shards:               lanes,
		SpeedupVsSingleShard: speedup,
	}
}

// benchModelPar measures the full-system phase-parallel mode: the same
// sharded spec runs once in deterministic-merge mode and once with
// SetParallel(true), their rendered reports must be byte-identical (the
// run aborts otherwise), and the recorded row is the parallel run with
// its wall-clock speedup over merged mode. PageRank on a 16-DIMM system
// alternates local rank compute with barrier-delimited frontier
// exchanges, so it exercises both parallel spans (concurrent fills and
// lane execution on a multi-core host; per-lane heap cache residency
// even on one core) and the serial remote phases between them.
func benchModelPar(quick bool) suiteResult {
	// Scale 14 keeps the run in the regime where the parallel spans are a
	// meaningful fraction of wall time; at larger scales the serial remote
	// exchange phases grow faster than the local compute phases and wash
	// the speedup out. Best-of-5 because the deltas are ~10% on a loaded
	// host.
	sp := spec.Spec{Kind: spec.KindSim, Workload: "pr", Scale: 14, Iters: 5, DIMMs: 16, Channels: 8}
	reps := 5
	if quick {
		sp.Scale = 11
		sp.Iters = 2
		reps = 1
	}
	const shards = 4

	measure := func(parallel bool) (best time.Duration, report []byte, events, simNS uint64, allocs uint64) {
		for r := 0; r < reps; r++ {
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			run, err := sp.RunSim(spec.SimHooks{Shards: shards, Parallel: parallel})
			wall := time.Since(start)
			runtime.ReadMemStats(&ms1)
			if err != nil {
				fatal(err)
			}
			var text bytes.Buffer
			run.Report(&text)
			if r == 0 || wall < best {
				best = wall
				report = text.Bytes()
				events = run.Sys.Sharded().Processed()
				simNS = run.Res.Makespan / uint64(sim.Nanosecond)
				allocs = ms1.Mallocs - ms0.Mallocs
			}
		}
		return best, report, events, simNS, allocs
	}
	mergedWall, mergedReport, _, _, _ := measure(false)
	parWall, parReport, events, simNS, allocs := measure(true)

	if !bytes.Equal(mergedReport, parReport) {
		fatal(fmt.Errorf("model-par: parallel run diverged from merged run\n--- merged\n%s--- parallel\n%s", mergedReport, parReport))
	}
	speedup := 0.0
	if parWall > 0 {
		speedup = float64(mergedWall) / float64(parWall)
	}
	return suiteResult{
		Events:          events,
		WallNS:          parWall.Nanoseconds(),
		AllocsPerOp:     float64(allocs) / float64(events),
		SimNS:           simNS,
		Shards:          shards,
		SpeedupVsMerged: speedup,
	}
}

// benchP2P saturates the chain with back-to-back 4 KiB transfers (the
// spec's canonical end-to-end p2p bench) — the per-hop NoC path
// (credits, bus reservation, route lookup) is the whole cost. Repeats
// give the suite enough wall time to measure in full mode.
func benchP2P(quick bool) suiteResult {
	reps := 8
	if quick {
		reps = 1
	}
	sps := make([]spec.Spec, reps)
	for i := range sps {
		sps[i] = spec.Spec{Kind: spec.KindSim, Workload: "p2p"}
	}
	return benchSpecs(sps...)
}

// benchTableIV runs the Table IV workload suite end to end on the default
// 8-DIMM DIMM-Link system: the macro benchmark every experiment grid is
// made of.
func benchTableIV(quick bool) suiteResult {
	scale := 14
	iters := 4
	if quick {
		scale = 11
		iters = 2
	}
	var sps []spec.Spec
	for _, w := range []string{"bfs", "hotspot", "kmeans", "nw", "pr", "sssp", "tspow"} {
		sps = append(sps, spec.Spec{Kind: spec.KindSim, Workload: w, Scale: scale, Iters: iters})
	}
	return benchSpecs(sps...)
}

// benchCollective runs the data-parallel training workload — dominated by
// the AllReduce rendezvous — under every IDC mechanism, exercising each
// mechanism's collective schedule (ring on DL's chain, tree elsewhere).
func benchCollective(quick bool) suiteResult {
	scale := 16
	iters := 4
	if quick {
		scale = 13
		iters = 2
	}
	var sps []spec.Spec
	for _, m := range []string{"dimm-link", "mcn", "aim", "abc-dimm"} {
		sps = append(sps, spec.Spec{Kind: spec.KindSim, Workload: "train", Mech: m, Scale: scale, Iters: iters})
	}
	return benchSpecs(sps...)
}

// benchIngest measures streaming trace-ingestion throughput: a producer
// goroutine encodes synthetic records in the binary framing into an
// io.Pipe while the consumer parses, validates and content-hashes them
// record-at-a-time — the dlserve upload path end to end, with no full
// trace ever resident. Events counts records parsed; a near-zero
// allocs/op column is the O(1)-memory evidence the ingest contract
// promises (per-record cost is parsing plus hashing, never retention).
func benchIngest(quick bool) suiteResult {
	records := uint64(4_000_000)
	reps := 3
	if quick {
		records = 400_000
		reps = 1
	}
	const threads = 64
	var best suiteResult
	for r := 0; r < reps; r++ {
		pr, pw := io.Pipe()
		go func() {
			w, err := ingest.NewWriter(pw, ingest.FormatBinary, threads)
			if err != nil {
				pw.CloseWithError(err)
				return
			}
			rng := uint64(0x9e3779b97f4a7c15)
			var rec trace.Record
			for i := uint64(0); i < records; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				rec.Thread = int(rng % threads)
				rec.Addr = (rng >> 12) % (1 << 30)
				rec.Size = uint32(64 + (rng>>34)%448)
				rec.Write = rng&1 == 1
				rec.Gap = (rng >> 40) & 1023
				if err := w.Write(&rec); err != nil {
					pw.CloseWithError(err)
					return
				}
			}
			pw.CloseWithError(w.Flush())
		}()
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		n, _, _, err := ingest.Drain(pr)
		wall := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if err != nil {
			fatal(err)
		}
		if n != records {
			fatal(fmt.Errorf("ingest: drained %d of %d records", n, records))
		}
		if r == 0 || wall.Nanoseconds() < best.WallNS {
			best = suiteResult{
				Events:      n,
				WallNS:      wall.Nanoseconds(),
				AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(n),
			}
		}
	}
	return best
}

// benchSpecs executes sim-kind specs serially and aggregates events, wall
// time, allocations and simulated time across them.
func benchSpecs(sps ...spec.Spec) suiteResult {
	var r suiteResult
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for _, sp := range sps {
		run, err := sp.RunSim(spec.SimHooks{})
		if err != nil {
			fatal(err)
		}
		r.Events += run.Sys.Eng.Processed()
		r.SimNS += run.Res.Makespan / uint64(sim.Nanosecond)
	}
	r.WallNS = time.Since(start).Nanoseconds()
	runtime.ReadMemStats(&ms1)
	if r.Events > 0 {
		r.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(r.Events)
	}
	return r
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlperf:", err)
	os.Exit(1)
}
