// compare.go implements `dlperf compare old.json new.json`: a regression
// gate over two recorded trajectory points. Suites are matched by name;
// the three comparable axes are events/sec (throughput, higher is
// better), allocs/op (lower is better) and file-level peak RSS. Each
// axis has its own percentage threshold, and crossing any of them makes
// the command exit non-zero — which is what lets a ci.sh leg diff a
// fresh quick run against the committed baseline.
//
// Wall-clock throughput is the noisiest axis (it measures the machine as
// much as the code), so its default threshold is loose and -skip-rate
// drops it entirely; allocs/op is deterministic for a fixed Go version
// and input, so its tight default is the axis CI actually leans on.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func runCompare(args []string) int {
	fs := flag.NewFlagSet("dlperf compare", flag.ExitOnError)
	var (
		maxRate   = fs.Float64("max-rate-drop", 40, "fail when a suite's events/sec drops by more than this percentage")
		maxAllocs = fs.Float64("max-allocs-rise", 10, "fail when a suite's allocs/op rises by more than this percentage")
		maxRSS    = fs.Float64("max-rss-rise", 50, "fail when peak RSS rises by more than this percentage")
		skipRate  = fs.Bool("skip-rate", false, "skip the events/sec axis (wall-clock noise on shared CI hosts)")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dlperf compare [flags] OLD.json NEW.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	oldBF, err := readBench(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlperf compare:", err)
		return 2
	}
	newBF, err := readBench(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlperf compare:", err)
		return 2
	}

	if oldBF.Quick != newBF.Quick {
		fmt.Fprintf(os.Stderr, "dlperf compare: warning: comparing quick=%v against quick=%v (inputs differ; deltas are not meaningful)\n",
			oldBF.Quick, newBF.Quick)
	}
	fmt.Printf("%-14s %14s %14s %9s   %11s %11s %9s\n",
		"suite", "old events/s", "new events/s", "delta", "old allocs", "new allocs", "delta")
	failed := false
	fail := func(format string, a ...any) {
		failed = true
		fmt.Fprintf(os.Stderr, "REGRESSION: "+format+"\n", a...)
	}
	for _, ns := range newBF.Suites {
		os2 := findSuite(oldBF.Suites, ns.Name)
		if os2 == nil {
			fmt.Printf("%-14s (new suite, no baseline)\n", ns.Name)
			continue
		}
		rateDelta := pctChange(os2.EventsPerSec, ns.EventsPerSec)
		allocDelta := pctChange(os2.AllocsPerOp, ns.AllocsPerOp)
		fmt.Printf("%-14s %14.0f %14.0f %+8.1f%%   %11.2f %11.2f %+8.1f%%\n",
			ns.Name, os2.EventsPerSec, ns.EventsPerSec, rateDelta,
			os2.AllocsPerOp, ns.AllocsPerOp, allocDelta)
		if !*skipRate && os2.EventsPerSec > 0 && rateDelta < -*maxRate {
			fail("%s: events/sec dropped %.1f%% (limit %.1f%%)", ns.Name, -rateDelta, *maxRate)
		}
		// The percentage gate needs an absolute floor: a suite at 0.001
		// allocs/op that drifts to 0.002 is a 100% "rise" of nothing.
		const allocsFloor = 0.05
		if os2.AllocsPerOp > 0 && allocDelta > *maxAllocs && ns.AllocsPerOp-os2.AllocsPerOp > allocsFloor {
			fail("%s: allocs/op rose %.1f%% (limit %.1f%%)", ns.Name, allocDelta, *maxAllocs)
		}
	}
	for _, os2 := range oldBF.Suites {
		if findSuite(newBF.Suites, os2.Name) == nil {
			fail("suite %s disappeared from the new run", os2.Name)
		}
	}
	if oldBF.PeakRSSBytes > 0 && newBF.PeakRSSBytes > 0 {
		rssDelta := pctChange(float64(oldBF.PeakRSSBytes), float64(newBF.PeakRSSBytes))
		fmt.Printf("%-14s %11.1fMiB %12.1fMiB %+7.1f%%\n", "peak-rss",
			float64(oldBF.PeakRSSBytes)/(1<<20), float64(newBF.PeakRSSBytes)/(1<<20), rssDelta)
		if rssDelta > *maxRSS {
			fail("peak RSS rose %.1f%% (limit %.1f%%)", rssDelta, *maxRSS)
		}
	}
	if failed {
		return 1
	}
	fmt.Printf("ok: %s -> %s within thresholds\n", oldBF.Label, newBF.Label)
	return 0
}

func readBench(path string) (*benchFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(b, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(bf.Suites) == 0 {
		return nil, fmt.Errorf("%s: no suites recorded", path)
	}
	return &bf, nil
}

func findSuite(ss []suiteResult, name string) *suiteResult {
	for i := range ss {
		if ss[i].Name == name {
			return &ss[i]
		}
	}
	return nil
}

// pctChange returns the percentage change from old to new (positive =
// increase). A zero old value yields zero (no meaningful baseline).
func pctChange(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * (new - old) / old
}
