// dlsmoke is the end-to-end smoke for dlserve, run by ci.sh. It spawns
// real dlserve processes on ephemeral ports and proves the service
// contract:
//
//  1. an HTTP job's result body is byte-identical to the dlsim CLI's
//     stdout for the same spec;
//  2. resubmitting the spec is a cache hit with an identical body;
//  3. /healthz and /metrics respond;
//  4. SIGTERM drains gracefully — a running job finishes and its result
//     is retrievable through the drain window, new submissions are
//     rejected with 503, and the server exits 0.
//
// With -cluster N it instead stands up an N-node cluster (each node a
// separate dlserve process with a disk store, all sharing one ring) and
// proves the cluster contract: routed submission, content-addressed
// peer read-through, byte-identity with the CLI. With -chaos it
// additionally SIGKILLs the node hosting a job mid-run and verifies the
// dispatcher requeues onto a peer and still returns bytes identical to
// the single-node CLI output — the determinism contract makes the kill
// invisible in the answer.
//
// With -load N -dur D it becomes a load generator instead of a smoke:
// N concurrent workers submit distinct-seed sim jobs against a running
// dlserve (or one it spawns itself) for the duration and it reports
// sustained jobs/sec plus p50/p99 submit-to-result latency. Point it at
// an existing deployment with -target URL[,URL...]; several URLs route
// through the cluster dispatcher.
//
// Usage: dlsmoke -serve ./dlserve -sim ./dlsim [-cluster 3 [-chaos]]
//
//	dlsmoke -serve ./dlserve -load 4 -dur 10s [-target URL[,URL...]]
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/serve/cluster"
	"repro/internal/spec"
)

func main() {
	var (
		serveBin = flag.String("serve", "./dlserve", "path to the dlserve binary")
		simBin   = flag.String("sim", "./dlsim", "path to the dlsim binary")
		clusterN = flag.Int("cluster", 0, "run the cluster smoke with N nodes instead of the single-node smoke")
		chaos    = flag.Bool("chaos", false, "with -cluster: SIGKILL the node hosting a job mid-run and require a byte-identical answer from a peer")
		traceIn  = flag.String("tracein", "", "single-node smoke only: additionally upload this trace file and require the trace job's result to match dlsim -tracein byte for byte")
		load     = flag.Int("load", 0, "load-generator mode: run N concurrent submit workers instead of the smoke")
		dur      = flag.Duration("dur", 5*time.Second, "with -load: how long to keep submitting jobs")
		target   = flag.String("target", "", "with -load: URL(s) of a running dlserve, comma-separated (several route via the cluster dispatcher); empty spawns a local node")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	switch {
	case *load > 0:
		loadGen(ctx, *serveBin, *load, *dur, *target)
	case *clusterN > 0:
		clusterSmoke(ctx, *serveBin, *simBin, *clusterN, *chaos)
	default:
		singleSmoke(ctx, *serveBin, *simBin, *traceIn)
	}
	fmt.Println("dlsmoke: PASS")
}

// node is one spawned dlserve process.
type node struct {
	url string
	cmd *exec.Cmd
}

// startNode spawns a dlserve, waits for its listening line and keeps
// draining its stdout. extra appends process-specific flags.
func startNode(serveBin string, extra ...string) (*node, error) {
	args := append([]string{}, extra...)
	cmd := exec.Command(serveBin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting %s: %w", serveBin, err)
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		_ = cmd.Process.Kill()
		return nil, fmt.Errorf("no listening line from dlserve (err %v)", sc.Err())
	}
	line := sc.Text()
	const prefix = "dlserve: listening on "
	if !strings.HasPrefix(line, prefix) {
		_ = cmd.Process.Kill()
		return nil, fmt.Errorf("unexpected first line %q", line)
	}
	go func() {
		for sc.Scan() {
		}
	}()
	return &node{url: strings.TrimPrefix(line, prefix), cmd: cmd}, nil
}

// reserveAddrs grabs n distinct ephemeral ports and releases them so
// the nodes can be told their own and each other's addresses up front —
// the ring membership must be identical on every node before any of
// them binds.
func reserveAddrs(n int) ([]string, error) {
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			_ = ln.Close()
		}
	}()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs, nil
}

// --- cluster smoke ---

func clusterSmoke(ctx context.Context, serveBin, simBin string, n int, chaos bool) {
	addrs, err := reserveAddrs(n)
	if err != nil {
		fatal(fmt.Errorf("reserve ports: %w", err))
	}
	urls := make([]string, n)
	for i, a := range addrs {
		urls[i] = "http://" + a
	}
	storeRoot, err := os.MkdirTemp("", "dlsmoke-store-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(storeRoot)

	nodes := make([]*node, n)
	for i := range nodes {
		nodes[i], err = startNode(serveBin,
			"-addr", addrs[i],
			"-workers", "1",
			"-self", urls[i],
			"-peers", strings.Join(urls, ","),
			"-store", fmt.Sprintf("%s/n%d", storeRoot, i),
			"-probe", "250ms",
		)
		if err != nil {
			fatal(err)
		}
		defer func(nd *node) { _ = nd.cmd.Process.Kill() }(nodes[i])
	}
	fmt.Printf("dlsmoke: %d-node cluster up (%s)\n", n, strings.Join(urls, ", "))

	d, err := cluster.NewDispatcher(cluster.DispatcherConfig{
		Nodes:        urls,
		Client:       client.Options{Retries: 3, BackoffBase: 20 * time.Millisecond, RequestTimeout: 10 * time.Second},
		HedgeAfter:   200 * time.Millisecond,
		PollInterval: 25 * time.Millisecond,
	})
	if err != nil {
		fatal(fmt.Errorf("dispatcher: %w", err))
	}

	// --- 1. Cluster answer is byte-identical to the CLI. ---
	sp := spec.Spec{Kind: spec.KindSim, Workload: "p2p", DIMMs: 4, Channels: 2}
	cli, err := exec.Command(simBin, "-workload", "p2p", "-dimms", "4", "-channels", "2").Output()
	if err != nil {
		fatal(fmt.Errorf("dlsim: %w", err))
	}
	out, err := d.Run(ctx, sp)
	if err != nil {
		fatal(fmt.Errorf("cluster run: %w", err))
	}
	if !bytes.Equal(out.Body, cli) {
		fatal(fmt.Errorf("cluster result differs from dlsim stdout:\n--- cluster\n%s--- cli\n%s", out.Body, cli))
	}
	owner := d.Ring().Owner(out.Hash)
	if out.Node != owner {
		fatal(fmt.Errorf("job served by %s, ring owner is %s", out.Node, owner))
	}
	fmt.Printf("dlsmoke: cluster result byte-identical to dlsim stdout (owner %s)\n", owner)

	// --- 2. Content-addressed read-through from a non-owner node. ---
	var other string
	for _, u := range urls {
		if u != owner {
			other = u
			break
		}
	}
	oc := client.New(other)
	status, body, _, err := oc.Do(ctx, http.MethodGet, "/v1/results/"+out.Hash, nil, nil)
	if err != nil || status != http.StatusOK {
		fatal(fmt.Errorf("peer read-through: status=%d err=%v", status, err))
	}
	if !bytes.Equal(body, cli) {
		fatal(fmt.Errorf("read-through body differs from CLI output"))
	}
	fmt.Println("dlsmoke: peer read-through returned identical bytes")

	// --- 3. Every node agrees on the membership. ---
	for _, u := range urls {
		c := client.New(u)
		st, ib, _, err := c.Do(ctx, http.MethodGet, "/cluster", nil, nil)
		if err != nil || st != http.StatusOK || !bytes.Contains(ib, []byte(owner)) {
			fatal(fmt.Errorf("/cluster on %s: status=%d err=%v", u, st, err))
		}
	}
	fmt.Println("dlsmoke: /cluster membership consistent on every node")

	if chaos {
		chaosKill(ctx, simBin, d, nodes, urls)
	}
}

// chaosKill submits a deliberately slow job, SIGKILLs the node running
// it mid-flight, and requires the dispatcher to requeue onto a peer and
// return bytes identical to the CLI — the cluster's whole fault-
// tolerance story in one assertion.
func chaosKill(ctx context.Context, simBin string, d *cluster.Dispatcher, nodes []*node, urls []string) {
	// The scale keeps the job in flight around a second — long enough to
	// land the kill while it runs (see the single-node drain smoke).
	slow := spec.Spec{Kind: spec.KindSim, Workload: "bfs", Scale: 17}
	hash, err := d.Hash(slow)
	if err != nil {
		fatal(err)
	}
	victimURL := d.Ring().Owner(hash)
	var victim *node
	for _, nd := range nodes {
		if nd.url == victimURL {
			victim = nd
			break
		}
	}
	if victim == nil {
		fatal(fmt.Errorf("owner %s not among spawned nodes", victimURL))
	}

	type res struct {
		out *cluster.Outcome
		err error
	}
	ch := make(chan res, 1)
	go func() {
		out, err := d.Run(ctx, slow)
		ch <- res{out, err}
	}()

	// Kill the owner the moment it reports the job running.
	vc := client.New(victimURL)
	deadline := time.Now().Add(30 * time.Second)
	for {
		h, err := vc.Health(ctx)
		if err == nil && h.Running > 0 {
			break
		}
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("job never started on owner %s", victimURL))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := victim.cmd.Process.Kill(); err != nil {
		fatal(fmt.Errorf("SIGKILL owner: %w", err))
	}
	_ = victim.cmd.Wait()
	fmt.Printf("dlsmoke: SIGKILLed owner %s mid-job\n", victimURL)

	var r res
	select {
	case r = <-ch:
	case <-time.After(2 * time.Minute):
		fatal(fmt.Errorf("dispatcher never returned after node kill"))
	}
	if r.err != nil {
		fatal(fmt.Errorf("cluster run after kill: %w", r.err))
	}
	if r.out.Requeues < 1 {
		fatal(fmt.Errorf("job was not requeued (requeues=%d, served by %s)", r.out.Requeues, r.out.Node))
	}
	if r.out.Node == victimURL {
		fatal(fmt.Errorf("result credited to the killed node"))
	}
	cli, err := exec.Command(simBin, "-workload", "bfs", "-scale", "17").Output()
	if err != nil {
		fatal(fmt.Errorf("dlsim (bfs scale 17): %w", err))
	}
	if !bytes.Equal(r.out.Body, cli) {
		fatal(fmt.Errorf("post-kill result differs from single-node CLI output"))
	}
	fmt.Printf("dlsmoke: requeued on %s after kill, %d requeue(s), bytes identical to CLI\n", r.out.Node, r.out.Requeues)

	// The survivors noticed: the dead node is suspect somewhere.
	for _, u := range urls {
		if u == victimURL {
			continue
		}
		c := client.New(u)
		if st, ib, _, err := c.Do(ctx, http.MethodGet, "/cluster", nil, nil); err == nil && st == http.StatusOK &&
			bytes.Contains(ib, []byte(`"suspects"`)) {
			fmt.Println("dlsmoke: survivors marked the killed node suspect")
			return
		}
	}
	fatal(fmt.Errorf("no survivor marked the killed node suspect"))
}

// --- single-node smoke (the original contract) ---

func singleSmoke(ctx context.Context, serveBin, simBin, traceIn string) {
	nd, err := startNode(serveBin, "-addr", "127.0.0.1:0", "-workers", "1")
	if err != nil {
		fatal(err)
	}
	cmd := nd.cmd
	defer func() { _ = cmd.Process.Kill() }()
	c := client.New(nd.url)

	// --- 1. HTTP result vs CLI stdout, byte for byte. ---
	sp := spec.Spec{Kind: spec.KindSim, Workload: "p2p", DIMMs: 4, Channels: 2}
	cli, err := exec.Command(simBin, "-workload", "p2p", "-dimms", "4", "-channels", "2").Output()
	if err != nil {
		fatal(fmt.Errorf("dlsim: %w", err))
	}
	st, err := c.Submit(ctx, sp)
	if err != nil {
		fatal(fmt.Errorf("submit: %w", err))
	}
	fin, err := c.Wait(ctx, st.ID, 0)
	if err != nil {
		fatal(fmt.Errorf("wait: %w", err))
	}
	if fin.State != serve.JobDone {
		fatal(fmt.Errorf("job %s ended %s: %s", st.ID, fin.State, fin.Error))
	}
	body, err := c.Result(ctx, st.ID, false)
	if err != nil {
		fatal(fmt.Errorf("result: %w", err))
	}
	if !bytes.Equal(body, cli) {
		fatal(fmt.Errorf("HTTP result differs from dlsim stdout:\n--- http\n%s--- cli\n%s", body, cli))
	}
	fmt.Println("dlsmoke: HTTP result byte-identical to dlsim stdout")

	// --- 2. Cache hit: identical body, no recompute. ---
	st2, err := c.Submit(ctx, sp)
	if err != nil {
		fatal(fmt.Errorf("resubmit: %w", err))
	}
	if !st2.Cached || st2.State != serve.JobDone {
		fatal(fmt.Errorf("resubmit not served from cache: %+v", st2))
	}
	body2, err := c.Result(ctx, st2.ID, false)
	if err != nil {
		fatal(fmt.Errorf("cached result: %w", err))
	}
	if !bytes.Equal(body2, cli) {
		fatal(fmt.Errorf("cached result body differs from fresh computation"))
	}
	fmt.Println("dlsmoke: cache hit returned identical bytes")

	// --- 3. Operational endpoints. ---
	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" {
		fatal(fmt.Errorf("healthz: %+v, %v", h, err))
	}
	mb, err := c.Metrics(ctx)
	if err != nil || !bytes.Contains(mb, []byte("dlserve_jobs_completed_total")) {
		fatal(fmt.Errorf("metrics scrape missing job counters (err %v)", err))
	}
	fmt.Println("dlsmoke: /healthz and /metrics OK")

	// --- 3b. External-trace path (opt-in via -tracein). ---
	if traceIn != "" {
		traceSmoke(ctx, c, simBin, traceIn)
	}

	// --- 4. Graceful drain under SIGTERM. ---
	// Submit a slower job, let it start, then TERM the server while it
	// runs. The scale is chosen to keep the job in flight for most of a
	// second so the drain window stays observable — the probe loop below
	// needs the server alive-and-draining long enough to see a 503 (a
	// faster simulator shrinks this window; don't lower the scale).
	slow := spec.Spec{Kind: spec.KindSim, Workload: "bfs", Scale: 17}
	st3, err := c.Submit(ctx, slow)
	if err != nil {
		fatal(fmt.Errorf("slow submit: %w", err))
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		s, err := c.Status(ctx, st3.ID)
		if err != nil {
			fatal(fmt.Errorf("slow status: %w", err))
		}
		if s.State == serve.JobRunning || s.State == serve.JobDone {
			break
		}
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("slow job never started: %s", s.State))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		fatal(fmt.Errorf("SIGTERM: %w", err))
	}

	// While draining, new submissions must be rejected (503). The drain
	// flag flips asynchronously with the signal, so poll briefly — and
	// each probe uses a distinct seed: a probe that sneaks in before the
	// flag flips would otherwise turn every later identical probe into a
	// cache/dedup hit, which the server intentionally keeps serving
	// during drain (reads keep working).
	rejected := false
	for probe, n := time.Now(), 0; time.Since(probe) < 5*time.Second; n++ {
		_, err := c.Submit(ctx, spec.Spec{Kind: spec.KindSim, Workload: "sync", Seed: int64(1000 + n)})
		if code := client.StatusCode(err); code == http.StatusServiceUnavailable {
			rejected = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !rejected {
		fatal(fmt.Errorf("submissions were not rejected with 503 during drain"))
	}

	// The in-flight job's result must come back intact through the drain
	// window (?wait=1 blocks until it is terminal).
	slowBody, err := c.Result(ctx, st3.ID, true)
	if err != nil {
		fatal(fmt.Errorf("result during drain: %w", err))
	}
	slowCLI, err := exec.Command(simBin, "-workload", "bfs", "-scale", "17").Output()
	if err != nil {
		fatal(fmt.Errorf("dlsim (bfs scale 17): %w", err))
	}
	if !bytes.Equal(slowBody, slowCLI) {
		fatal(fmt.Errorf("drained job's result differs from dlsim stdout"))
	}

	if err := cmd.Wait(); err != nil {
		fatal(fmt.Errorf("dlserve exited non-zero after drain: %w", err))
	}
	fmt.Println("dlsmoke: SIGTERM drained gracefully (503 intake, result intact, exit 0)")
}

// --- load generator ---

// loadGen hammers a dlserve deployment with distinct-seed sim jobs from
// `workers` concurrent submitters for `dur`, then reports sustained
// jobs/sec and p50/p99 submit-to-result latency. Every job uses a fresh
// seed so the content-addressed cache never short-circuits the measured
// path: each submission is a real compute.
func loadGen(ctx context.Context, serveBin string, workers int, dur time.Duration, target string) {
	var urls []string
	if target != "" {
		for _, u := range strings.Split(target, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			fatal(fmt.Errorf("-target given but no URLs parsed"))
		}
	} else {
		nd, err := startNode(serveBin, "-addr", "127.0.0.1:0", "-workers", fmt.Sprint(workers))
		if err != nil {
			fatal(err)
		}
		defer func() { _ = nd.cmd.Process.Kill() }()
		urls = []string{nd.url}
		fmt.Printf("dlsmoke: load: spawned local node %s\n", nd.url)
	}

	// One submit-to-result round trip. Single target talks straight HTTP;
	// several route through the cluster dispatcher so hedging and requeue
	// behaviour are part of what the numbers measure.
	var runJob func(ctx context.Context, sp spec.Spec) error
	if len(urls) == 1 {
		c := client.New(urls[0])
		runJob = func(ctx context.Context, sp spec.Spec) error {
			st, err := c.Submit(ctx, sp)
			if err != nil {
				return fmt.Errorf("submit: %w", err)
			}
			fin, err := c.Wait(ctx, st.ID, 0)
			if err != nil {
				return fmt.Errorf("wait: %w", err)
			}
			if fin.State != serve.JobDone {
				return fmt.Errorf("job %s ended %s: %s", st.ID, fin.State, fin.Error)
			}
			if _, err := c.Result(ctx, st.ID, false); err != nil {
				return fmt.Errorf("result: %w", err)
			}
			return nil
		}
	} else {
		d, err := cluster.NewDispatcher(cluster.DispatcherConfig{
			Nodes:        urls,
			Client:       client.Options{Retries: 3, BackoffBase: 20 * time.Millisecond, RequestTimeout: 30 * time.Second},
			HedgeAfter:   500 * time.Millisecond,
			PollInterval: 25 * time.Millisecond,
		})
		if err != nil {
			fatal(fmt.Errorf("dispatcher: %w", err))
		}
		runJob = func(ctx context.Context, sp spec.Spec) error {
			_, err := d.Run(ctx, sp)
			return err
		}
	}

	fmt.Printf("dlsmoke: load: %d worker(s) against %d target(s) for %s\n", workers, len(urls), dur)
	var (
		mu        sync.Mutex
		latencies []time.Duration
		failures  int
		firstErr  error
	)
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Seeds are partitioned per worker so no two submissions in a
			// run ever hash alike.
			seed := int64(w) * 1_000_000
			for time.Now().Before(deadline) && ctx.Err() == nil {
				seed++
				sp := spec.Spec{Kind: spec.KindSim, Workload: "p2p", DIMMs: 4, Channels: 2, Seed: seed}
				start := time.Now()
				err := runJob(ctx, sp)
				lat := time.Since(start)
				mu.Lock()
				if err != nil {
					failures++
					if firstErr == nil {
						firstErr = err
					}
				} else {
					latencies = append(latencies, lat)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	done := len(latencies)
	if done == 0 {
		fatal(fmt.Errorf("load: no job completed (%d failures, first: %v)", failures, firstErr))
	}
	if failures > 0 {
		fmt.Printf("dlsmoke: load: %d job(s) FAILED (first: %v)\n", failures, firstErr)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(done-1))
		return latencies[i]
	}
	fmt.Printf("dlsmoke: load: %d jobs in %s = %.1f jobs/s sustained\n",
		done, dur, float64(done)/dur.Seconds())
	fmt.Printf("dlsmoke: load: submit-to-result latency p50 %s  p99 %s  max %s\n",
		pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond), latencies[done-1].Round(time.Microsecond))
	if failures > 0 {
		fatal(fmt.Errorf("load: %d of %d jobs failed", failures, failures+done))
	}
}

// traceSmoke proves the external-trace contract end to end: the same
// trace file replayed through dlsim -tracein and through the HTTP path
// (streaming upload, then a trace-kind job referencing the returned
// hash) must produce byte-identical reports.
func traceSmoke(ctx context.Context, c *client.Client, simBin, path string) {
	cli, err := exec.Command(simBin, "-tracein", path).Output()
	if err != nil {
		fatal(fmt.Errorf("dlsim -tracein: %w", err))
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	info, err := c.UploadTrace(ctx, f)
	f.Close()
	if err != nil {
		fatal(fmt.Errorf("trace upload: %w", err))
	}
	st, err := c.Submit(ctx, spec.Spec{Kind: spec.KindTrace, Trace: info.Hash})
	if err != nil {
		fatal(fmt.Errorf("trace submit: %w", err))
	}
	fin, err := c.Wait(ctx, st.ID, 0)
	if err != nil {
		fatal(fmt.Errorf("trace wait: %w", err))
	}
	if fin.State != serve.JobDone {
		fatal(fmt.Errorf("trace job %s ended %s: %s", st.ID, fin.State, fin.Error))
	}
	body, err := c.Result(ctx, st.ID, false)
	if err != nil {
		fatal(fmt.Errorf("trace result: %w", err))
	}
	if !bytes.Equal(body, cli) {
		fatal(fmt.Errorf("trace job result differs from dlsim -tracein stdout:\n--- http\n%s--- cli\n%s", body, cli))
	}
	fmt.Printf("dlsmoke: uploaded trace %s… (%d records); trace job byte-identical to dlsim -tracein\n",
		info.Hash[:12], info.Records)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlsmoke:", err)
	os.Exit(1)
}
