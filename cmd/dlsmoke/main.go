// dlsmoke is the end-to-end smoke for dlserve, run by ci.sh. It spawns
// a dlserve on an ephemeral port and proves the service contract with
// real processes:
//
//  1. an HTTP job's result body is byte-identical to the dlsim CLI's
//     stdout for the same spec;
//  2. resubmitting the spec is a cache hit with an identical body;
//  3. /healthz and /metrics respond;
//  4. SIGTERM drains gracefully — a running job finishes and its result
//     is retrievable through the drain window, new submissions are
//     rejected with 503, and the server exits 0.
//
// Usage: dlsmoke -serve ./dlserve -sim ./dlsim
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/spec"
)

func main() {
	var (
		serveBin = flag.String("serve", "./dlserve", "path to the dlserve binary")
		simBin   = flag.String("sim", "./dlsim", "path to the dlsim binary")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	cmd := exec.Command(*serveBin, "-addr", "127.0.0.1:0", "-workers", "1")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fatal(err)
	}
	if err := cmd.Start(); err != nil {
		fatal(fmt.Errorf("starting %s: %w", *serveBin, err))
	}
	defer func() { _ = cmd.Process.Kill() }()

	// The first stdout line announces the ephemeral address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		fatal(fmt.Errorf("no listening line from dlserve (err %v)", sc.Err()))
	}
	line := sc.Text()
	const prefix = "dlserve: listening on "
	if !strings.HasPrefix(line, prefix) {
		fatal(fmt.Errorf("unexpected first line %q", line))
	}
	base := strings.TrimPrefix(line, prefix)
	go func() { // drain any further stdout
		for sc.Scan() {
		}
	}()
	c := client.New(base)

	// --- 1. HTTP result vs CLI stdout, byte for byte. ---
	sp := spec.Spec{Kind: spec.KindSim, Workload: "p2p", DIMMs: 4, Channels: 2}
	cli, err := exec.Command(*simBin, "-workload", "p2p", "-dimms", "4", "-channels", "2").Output()
	if err != nil {
		fatal(fmt.Errorf("dlsim: %w", err))
	}
	st, err := c.Submit(ctx, sp)
	if err != nil {
		fatal(fmt.Errorf("submit: %w", err))
	}
	fin, err := c.Wait(ctx, st.ID, 0)
	if err != nil {
		fatal(fmt.Errorf("wait: %w", err))
	}
	if fin.State != serve.JobDone {
		fatal(fmt.Errorf("job %s ended %s: %s", st.ID, fin.State, fin.Error))
	}
	body, err := c.Result(ctx, st.ID, false)
	if err != nil {
		fatal(fmt.Errorf("result: %w", err))
	}
	if !bytes.Equal(body, cli) {
		fatal(fmt.Errorf("HTTP result differs from dlsim stdout:\n--- http\n%s--- cli\n%s", body, cli))
	}
	fmt.Println("dlsmoke: HTTP result byte-identical to dlsim stdout")

	// --- 2. Cache hit: identical body, no recompute. ---
	st2, err := c.Submit(ctx, sp)
	if err != nil {
		fatal(fmt.Errorf("resubmit: %w", err))
	}
	if !st2.Cached || st2.State != serve.JobDone {
		fatal(fmt.Errorf("resubmit not served from cache: %+v", st2))
	}
	body2, err := c.Result(ctx, st2.ID, false)
	if err != nil {
		fatal(fmt.Errorf("cached result: %w", err))
	}
	if !bytes.Equal(body2, cli) {
		fatal(fmt.Errorf("cached result body differs from fresh computation"))
	}
	fmt.Println("dlsmoke: cache hit returned identical bytes")

	// --- 3. Operational endpoints. ---
	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" {
		fatal(fmt.Errorf("healthz: %+v, %v", h, err))
	}
	mb, err := c.Metrics(ctx)
	if err != nil || !bytes.Contains(mb, []byte("dlserve_jobs_completed_total")) {
		fatal(fmt.Errorf("metrics scrape missing job counters (err %v)", err))
	}
	fmt.Println("dlsmoke: /healthz and /metrics OK")

	// --- 4. Graceful drain under SIGTERM. ---
	// Submit a slower job, let it start, then TERM the server while it
	// runs. The scale is chosen to keep the job in flight for most of a
	// second so the drain window stays observable — the probe loop below
	// needs the server alive-and-draining long enough to see a 503 (a
	// faster simulator shrinks this window; don't lower the scale).
	slow := spec.Spec{Kind: spec.KindSim, Workload: "bfs", Scale: 17}
	st3, err := c.Submit(ctx, slow)
	if err != nil {
		fatal(fmt.Errorf("slow submit: %w", err))
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		s, err := c.Status(ctx, st3.ID)
		if err != nil {
			fatal(fmt.Errorf("slow status: %w", err))
		}
		if s.State == serve.JobRunning || s.State == serve.JobDone {
			break
		}
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("slow job never started: %s", s.State))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		fatal(fmt.Errorf("SIGTERM: %w", err))
	}

	// While draining, new submissions must be rejected (503). The drain
	// flag flips asynchronously with the signal, so poll briefly — and
	// each probe uses a distinct seed: a probe that sneaks in before the
	// flag flips would otherwise turn every later identical probe into a
	// cache/dedup hit, which the server intentionally keeps serving
	// during drain (reads keep working).
	rejected := false
	for probe, n := time.Now(), 0; time.Since(probe) < 5*time.Second; n++ {
		_, err := c.Submit(ctx, spec.Spec{Kind: spec.KindSim, Workload: "sync", Seed: int64(1000 + n)})
		if code := client.StatusCode(err); code == http.StatusServiceUnavailable {
			rejected = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !rejected {
		fatal(fmt.Errorf("submissions were not rejected with 503 during drain"))
	}

	// The in-flight job's result must come back intact through the drain
	// window (?wait=1 blocks until it is terminal).
	slowBody, err := c.Result(ctx, st3.ID, true)
	if err != nil {
		fatal(fmt.Errorf("result during drain: %w", err))
	}
	slowCLI, err := exec.Command(*simBin, "-workload", "bfs", "-scale", "17").Output()
	if err != nil {
		fatal(fmt.Errorf("dlsim (bfs scale 17): %w", err))
	}
	if !bytes.Equal(slowBody, slowCLI) {
		fatal(fmt.Errorf("drained job's result differs from dlsim stdout"))
	}

	if err := cmd.Wait(); err != nil {
		fatal(fmt.Errorf("dlserve exited non-zero after drain: %w", err))
	}
	fmt.Println("dlsmoke: SIGTERM drained gracefully (503 intake, result intact, exit 0)")
	fmt.Println("dlsmoke: PASS")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlsmoke:", err)
	os.Exit(1)
}
